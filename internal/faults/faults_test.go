package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

func TestParseScenario(t *testing.T) {
	sc, err := Parse([]byte(`{
		"name": "span-degrade",
		"description": "SPAN port loses bandwidth mid-campaign",
		"resilience": true,
		"events": [
			{"at": "2s", "duration": "10s", "kind": "link-degrade", "target": "link:span", "severity": 0.8},
			{"at": "4s", "kind": "sensor-crash", "target": "sensor:0"}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "span-degrade" || !sc.Resilience || len(sc.Events) != 2 {
		t.Fatalf("parsed scenario wrong: %+v", sc)
	}
	if sc.Events[0].At.Std() != 2*time.Second || sc.Events[0].Duration.Std() != 10*time.Second {
		t.Fatalf("durations mis-parsed: %+v", sc.Events[0])
	}
	if sc.Empty() {
		t.Fatal("non-empty scenario reported Empty")
	}
}

func TestParseRejectsBadScenarios(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown-kind", `{"name":"x","events":[{"at":"1s","kind":"meteor-strike"}]}`, "unknown kind"},
		{"missing-name", `{"events":[]}`, "needs a name"},
		{"bad-severity", `{"name":"x","events":[{"at":"1s","duration":"1s","kind":"alert-loss","severity":1.5}]}`, "outside [0,1]"},
		{"missing-duration", `{"name":"x","events":[{"at":"1s","kind":"analyzer-stall","target":"analyzer:0"}]}`, "positive duration"},
		{"wrong-target-shape", `{"name":"x","events":[{"at":"1s","duration":"1s","kind":"link-loss","target":"sensor:0"}]}`, "must be link:"},
		{"bad-duration-string", `{"name":"x","events":[{"at":"1 parsec","kind":"sensor-crash","target":"sensor:0"}]}`, "bad duration"},
		{"unknown-field", `{"name":"x","frobnicate":true,"events":[]}`, "unknown field"},
		{"negative-offset", `{"name":"x","events":[{"at":"-1s","kind":"sensor-crash","target":"sensor:0"}]}`, "negative offset"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.in))
		if err == nil {
			t.Errorf("%s: Parse accepted invalid scenario", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
}

// testRig builds a minimal sim + link + IDS for injector tests.
func testRig(t *testing.T) (*simtime.Sim, *netsim.Link, *ids.IDS, Targets) {
	t.Helper()
	sim := simtime.New(3)
	sink := netsim.NewSink("sink")
	src := netsim.NewHost(sim, "src", packet.IPv4(10, 0, 0, 1))
	link := netsim.NewLink(sim, src, sink, netsim.LinkConfig{Name: "span"})
	src.SetLink(link)
	inst, err := ids.New(sim, ids.Config{
		Name: "rig", Sensors: 2, Analyzers: 1, Balancer: ids.BalancerFlowHash,
		Engine: func() detect.Engine {
			return detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, link, inst, Targets{Links: map[string]*netsim.Link{"span": link}, IDS: inst}
}

func TestInjectorRejectsUnknownTargets(t *testing.T) {
	sim, _, _, tg := testRig(t)
	cases := []struct {
		ev      Event
		wantErr string
	}{
		{Event{At: 0, Duration: Duration(time.Second), Kind: KindLinkPartition, Target: "link:backhaul"}, "unknown link"},
		{Event{At: 0, Kind: KindSensorCrash, Target: "sensor:7"}, "sensor index"},
		{Event{At: 0, Duration: Duration(time.Second), Kind: KindAnalyzerStall, Target: "analyzer:3"}, "analyzer index"},
	}
	for _, c := range cases {
		sc := &Scenario{Name: "t", Events: []Event{c.ev}}
		_, err := NewInjector(sim, sc, 1, tg)
		if err == nil {
			t.Errorf("%s: injector accepted bad target %q", c.ev.Kind, c.ev.Target)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.ev.Kind, err, c.wantErr)
		}
	}
}

func TestInjectorPartitionWindowScalesWithSeverity(t *testing.T) {
	// A partition's active window scales with severity: packets offered
	// inside the scaled window drop, those after it pass.
	dropsAtSeverity := func(sev float64) uint64 {
		sim, link, _, tg := testRig(t)
		src := link.A().(*netsim.Host)
		sc := &Scenario{Name: "t", Events: []Event{
			{At: 0, Duration: Duration(8 * time.Second), Kind: KindLinkPartition, Target: "link:span"},
		}}
		inj, err := NewInjector(sim, sc, sev, tg)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Arm(); err != nil {
			t.Fatal(err)
		}
		// One packet per second for 10s.
		for i := 0; i < 10; i++ {
			at := time.Duration(i)*time.Second + 500*time.Millisecond
			sim.MustSchedule(at, func() {
				src.Send(&packet.Packet{Dst: packet.IPv4(10, 0, 0, 2), Payload: []byte("x")})
			})
		}
		sim.Run()
		return link.InjectedDrops()
	}
	full, half, none := dropsAtSeverity(1), dropsAtSeverity(0.5), dropsAtSeverity(0)
	if none != 0 {
		t.Fatalf("severity 0 dropped %d packets", none)
	}
	if full != 8 {
		t.Fatalf("severity 1 dropped %d, want 8 (full window)", full)
	}
	if half != 4 {
		t.Fatalf("severity 0.5 dropped %d, want 4 (half window)", half)
	}
}

func TestInjectorZeroSeverityArmsNothing(t *testing.T) {
	sim, _, _, tg := testRig(t)
	sc := &Scenario{Name: "t", Resilience: false, Events: []Event{
		{At: 0, Duration: Duration(time.Second), Kind: KindAlertLoss},
		{At: 0, Kind: KindSensorCrash, Target: "sensor:*"},
	}}
	inj, err := NewInjector(sim, sc, 0, tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	if len(inj.Applied) != 0 {
		t.Fatalf("severity 0 applied %d events", len(inj.Applied))
	}
	// The event queue must be empty: Run returns immediately at time 0.
	sim.Run()
	if sim.Now() != 0 {
		t.Fatalf("severity-0 injector left events on the queue (now=%v)", sim.Now())
	}
}

func TestInjectorSensorCrashAndHang(t *testing.T) {
	sim, _, inst, tg := testRig(t)
	sc := &Scenario{Name: "t", Events: []Event{
		{At: Duration(time.Second), Kind: KindSensorCrash, Target: "sensor:0"},
		{At: Duration(time.Second), Duration: Duration(2 * time.Second), Kind: KindSensorHang, Target: "sensor:1"},
	}}
	inj, err := NewInjector(sim, sc, 1, tg)
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Arm(); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(1500 * time.Millisecond)
	if inst.Sensors()[0].State() != ids.SensorFailed || inst.Sensors()[1].State() != ids.SensorFailed {
		t.Fatal("sensors not failed inside fault window")
	}
	sim.Run()
	// The rig has no RestartAfter: the crashed sensor stays down, the
	// hung one was revived by the injector at window end.
	if inst.Sensors()[0].State() != ids.SensorFailed {
		t.Fatal("crashed sensor without restart policy revived itself")
	}
	if inst.Sensors()[1].State() != ids.SensorUp {
		t.Fatal("hung sensor not recovered at window end")
	}
	if got := inst.Sensors()[1].Downtime(); got != 2*time.Second {
		t.Fatalf("hung sensor downtime = %v, want 2s", got)
	}
}
