package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/simtime"
)

// Targets binds a scenario's symbolic names to the live components of
// one evaluation run. The harness holds references the components never
// see: injection is invisible to the instrumented system.
type Targets struct {
	// Links maps scenario link names ("span", "lan-trunk", "ext-trunk")
	// to live links.
	Links map[string]*netsim.Link
	// IDS is the product under test.
	IDS *ids.IDS
	// Flight, when non-nil, receives a timeline event as each fault
	// onset fires. The injector wraps its existing onset closures rather
	// than scheduling anything new, so the simulation's event count and
	// order — and therefore its results — are identical with or without
	// a recorder.
	Flight *obs.FlightRecorder
}

// Applied records one scheduled fault application for the run report.
type Applied struct {
	Kind, Target string
	// At/Until are offsets from the injection origin; Until is zero for
	// instantaneous faults (sensor-crash).
	At, Until time.Duration
	// Effective is the severity actually applied after sweep scaling.
	Effective float64
}

// Injector schedules a scenario's events onto the simulation clock.
type Injector struct {
	sim      *simtime.Sim
	scenario *Scenario
	severity float64
	targets  Targets

	// Applied lists every fault scheduled by Arm, in event order.
	Applied []Applied
}

// NewInjector validates the scenario against the run's targets and
// prepares an injector scaling event intensities by severity in [0,1].
// Severity scaling is the degradation-curve knob: continuous faults
// scale magnitude (bandwidth derate, loss fraction, slowdown), windowed
// binary faults scale their active duration — both weakly monotone in
// severity.
func NewInjector(sim *simtime.Sim, sc *Scenario, severity float64, tg Targets) (*Injector, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if severity < 0 || severity > 1 {
		return nil, fmt.Errorf("faults: severity %v outside [0,1]", severity)
	}
	inj := &Injector{sim: sim, scenario: sc, severity: severity, targets: tg}
	if sc.Empty() {
		return inj, nil
	}
	// Resolve every target eagerly so misaddressed scenarios fail at
	// build time, not mid-run.
	for i, ev := range sc.Events {
		var err error
		switch {
		case strings.HasPrefix(ev.Target, "link:"):
			_, err = inj.link(ev.Target)
		case strings.HasPrefix(ev.Target, "sensor:"):
			_, err = inj.sensors(ev.Target)
		case strings.HasPrefix(ev.Target, "analyzer:"):
			_, err = inj.analyzers(ev.Target)
		}
		if err != nil {
			return nil, fmt.Errorf("faults: %s event %d: %w", sc.Name, i, err)
		}
	}
	return inj, nil
}

func (inj *Injector) link(target string) (*netsim.Link, error) {
	name := strings.TrimPrefix(target, "link:")
	l, ok := inj.targets.Links[name]
	if !ok || l == nil {
		known := make([]string, 0, len(inj.targets.Links))
		for k := range inj.targets.Links {
			known = append(known, k)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("unknown link %q (have: %s)", name, strings.Join(known, ", "))
	}
	return l, nil
}

func (inj *Injector) sensors(target string) ([]*ids.Sensor, error) {
	pool := inj.targets.IDS.Sensors()
	idx := strings.TrimPrefix(target, "sensor:")
	if idx == "*" {
		return pool, nil
	}
	i, err := strconv.Atoi(idx)
	if err != nil || i < 0 || i >= len(pool) {
		return nil, fmt.Errorf("sensor index %q outside 0..%d", idx, len(pool)-1)
	}
	return pool[i : i+1], nil
}

func (inj *Injector) analyzers(target string) ([]*ids.Analyzer, error) {
	pool := inj.targets.IDS.Analyzers()
	idx := strings.TrimPrefix(target, "analyzer:")
	if idx == "*" {
		return pool, nil
	}
	i, err := strconv.Atoi(idx)
	if err != nil || i < 0 || i >= len(pool) {
		return nil, fmt.Errorf("analyzer index %q outside 0..%d", idx, len(pool)-1)
	}
	return pool[i : i+1], nil
}

// effective scales an event's baseline severity by the run knob.
func (inj *Injector) effective(ev Event) float64 {
	base := ev.Severity
	if base == 0 {
		base = 1
	}
	eff := base * inj.severity
	if eff < 0 {
		return 0
	}
	if eff > 1 {
		return 1
	}
	return eff
}

// onset wraps a fault's onset closure so its firing lands on the
// flight-recorder timeline (kind:target, sim time, severity in
// permille). With no recorder wired the closure passes through
// untouched: the wrapper never schedules anything of its own, so event
// count, order, and results are identical either way.
func (inj *Injector) onset(ev Event, eff float64, fn func()) func() {
	f := inj.targets.Flight
	if f == nil {
		return fn
	}
	name := ev.Kind + ":" + ev.Target
	permille := int64(eff * 1000)
	return func() {
		f.Record(obs.FlightFaultInject, -1, int64(inj.sim.Now()), permille, name)
		fn()
	}
}

// Arm schedules every event relative to the current simulation time (the
// injection origin — typically the start of the attack phase). Events
// with zero effective severity schedule nothing, so a severity-0 run is
// event-for-event identical to a no-faults run.
func (inj *Injector) Arm() error {
	if inj.scenario.Empty() {
		return nil
	}
	for _, ev := range inj.scenario.Events {
		eff := inj.effective(ev)
		if eff == 0 {
			continue
		}
		if err := inj.armEvent(ev, eff); err != nil {
			return err
		}
	}
	return nil
}

func (inj *Injector) armEvent(ev Event, eff float64) error {
	at := ev.At.Std()
	dur := ev.Duration.Std()
	// Windowed binary faults scale duration; continuous faults keep the
	// full window and scale magnitude.
	scaledDur := time.Duration(float64(dur) * eff)
	rec := Applied{Kind: ev.Kind, Target: ev.Target, At: at, Effective: eff}

	switch ev.Kind {
	case KindLinkDegrade:
		l, err := inj.link(ev.Target)
		if err != nil {
			return err
		}
		scale := 1 - 0.95*eff
		inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { l.SetBandwidthScale(scale) }))
		inj.sim.MustSchedule(at+dur, func() { l.SetBandwidthScale(0) })
		rec.Until = at + dur

	case KindLinkLoss:
		l, err := inj.link(ev.Target)
		if err != nil {
			return err
		}
		every := int(math.Round(1 / eff))
		if every < 1 {
			every = 1
		}
		inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { l.SetLossEvery(every) }))
		inj.sim.MustSchedule(at+dur, func() { l.SetLossEvery(0) })
		rec.Until = at + dur

	case KindLinkPartition:
		l, err := inj.link(ev.Target)
		if err != nil {
			return err
		}
		inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { l.SetDown(true) }))
		inj.sim.MustSchedule(at+scaledDur, func() { l.SetDown(false) })
		rec.Until = at + scaledDur

	case KindLinkFlap:
		l, err := inj.link(ev.Target)
		if err != nil {
			return err
		}
		period := ev.Period.Std()
		if period <= 0 {
			period = 2 * time.Second
		}
		// Each cycle is down for period×eff then up for the remainder.
		downFor := time.Duration(float64(period) * eff)
		for t := at; t < at+dur; t += period {
			start, end := t, t+downFor
			if end > at+dur {
				end = at + dur
			}
			inj.sim.MustSchedule(start, inj.onset(ev, eff, func() { l.SetDown(true) }))
			inj.sim.MustSchedule(end, func() { l.SetDown(false) })
		}
		rec.Until = at + dur

	case KindSensorCrash:
		pool, err := inj.sensors(ev.Target)
		if err != nil {
			return err
		}
		for _, sn := range pool {
			sn := sn
			inj.sim.MustSchedule(at, inj.onset(ev, eff, sn.InjectCrash))
		}

	case KindSensorHang:
		pool, err := inj.sensors(ev.Target)
		if err != nil {
			return err
		}
		for _, sn := range pool {
			sn := sn
			inj.sim.MustSchedule(at, inj.onset(ev, eff, sn.InjectHang))
			inj.sim.MustSchedule(at+scaledDur, sn.InjectRecover)
		}
		rec.Until = at + scaledDur

	case KindSensorSlow:
		pool, err := inj.sensors(ev.Target)
		if err != nil {
			return err
		}
		scale := 1 - 0.9*eff
		for _, sn := range pool {
			sn := sn
			inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { sn.InjectSlowdown(scale) }))
			inj.sim.MustSchedule(at+dur, func() { sn.InjectSlowdown(0) })
		}
		rec.Until = at + dur

	case KindAnalyzerStall:
		pool, err := inj.analyzers(ev.Target)
		if err != nil {
			return err
		}
		for _, an := range pool {
			an := an
			inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { an.SetStalled(true) }))
			inj.sim.MustSchedule(at+scaledDur, func() { an.SetStalled(false) })
		}
		rec.Until = at + scaledDur

	case KindAlertLoss:
		s := inj.targets.IDS
		inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { s.SetAlertLoss(true) }))
		inj.sim.MustSchedule(at+scaledDur, func() { s.SetAlertLoss(false) })
		rec.Until = at + scaledDur

	case KindMgmtOutage:
		m := inj.targets.IDS.Monitor()
		inj.sim.MustSchedule(at, inj.onset(ev, eff, func() { m.SetMgmtOutage(true) }))
		inj.sim.MustSchedule(at+scaledDur, func() { m.SetMgmtOutage(false) })
		rec.Until = at + scaledDur

	default:
		return fmt.Errorf("faults: unhandled kind %q", ev.Kind)
	}
	inj.Applied = append(inj.Applied, rec)
	return nil
}
