// Package faults is the deterministic fault-injection harness: declarative
// scenarios of component and network failures, scheduled on the simtime
// kernel and applied to a running evaluation without the instrumented
// components knowing they are under test. The paper's architectural
// (class 2) metrics — resistance to attack upon self, fail-open versus
// fail-closed, graceful degradation — describe how an IDS behaves when
// its own parts fail; this package makes those stress conditions
// explicit, repeatable, and severity-scalable, so defensive-capability
// scores are comparable across products instead of anecdotal.
//
// Determinism contract: a scenario carries no randomness. Every event is
// a fixed (offset, duration, kind, target, severity) tuple; the injector
// schedules plain simtime events, so identical seed + scenario yields a
// byte-identical run, and an empty scenario yields a run byte-identical
// to one without the harness.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"
)

// Fault kinds. Continuous kinds scale magnitude with severity; windowed
// kinds scale their active duration, so a severity sweep traces a
// monotone degradation curve either way.
const (
	// KindLinkDegrade derates a link's bandwidth for the event window.
	KindLinkDegrade = "link-degrade"
	// KindLinkLoss drops a deterministic fraction of a link's packets.
	KindLinkLoss = "link-loss"
	// KindLinkPartition takes a link hard down (duration × severity).
	KindLinkPartition = "link-partition"
	// KindLinkFlap alternates a link down/up with the event period.
	KindLinkFlap = "link-flap"
	// KindSensorCrash force-fails a sensor; the product's own restart
	// policy (if any) governs recovery.
	KindSensorCrash = "sensor-crash"
	// KindSensorHang wedges a sensor, deaf to its restart timer, until
	// the event window ends (duration × severity).
	KindSensorHang = "sensor-hang"
	// KindSensorSlow derates a sensor's processing speed for the window.
	KindSensorSlow = "sensor-slow"
	// KindAnalyzerStall pauses an analyzer's correlation for the window
	// (duration × severity).
	KindAnalyzerStall = "analyzer-stall"
	// KindAlertLoss severs the sensor→analyzer alert path for the window
	// (duration × severity).
	KindAlertLoss = "alert-loss"
	// KindMgmtOutage severs the monitor→console management channel for
	// the window (duration × severity).
	KindMgmtOutage = "mgmt-outage"
)

// knownKinds lists every kind, with whether it needs a link target, a
// sensor target, an analyzer target, and a duration.
var knownKinds = map[string]struct {
	needsLink, needsSensor, needsAnalyzer, needsDuration bool
}{
	KindLinkDegrade:   {needsLink: true, needsDuration: true},
	KindLinkLoss:      {needsLink: true, needsDuration: true},
	KindLinkPartition: {needsLink: true, needsDuration: true},
	KindLinkFlap:      {needsLink: true, needsDuration: true},
	KindSensorCrash:   {needsSensor: true},
	KindSensorHang:    {needsSensor: true, needsDuration: true},
	KindSensorSlow:    {needsSensor: true, needsDuration: true},
	KindAnalyzerStall: {needsAnalyzer: true, needsDuration: true},
	KindAlertLoss:     {needsDuration: true},
	KindMgmtOutage:    {needsDuration: true},
}

// Kinds returns every fault kind, sorted.
func Kinds() []string {
	out := make([]string, 0, len(knownKinds))
	for k := range knownKinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Duration is a time.Duration that (un)marshals as a Go duration string
// ("1.5s", "250ms") so scenario files stay human-editable.
type Duration time.Duration

// UnmarshalJSON parses either a duration string or bare nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("faults: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("faults: duration must be a string like \"500ms\" or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON renders the duration string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// Std converts to time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Event is one declarative fault: at offset At from the injection
// origin, apply Kind to Target with the given baseline Severity; for
// windowed kinds the fault clears after Duration (scaled by the run's
// effective severity).
type Event struct {
	// At is the activation offset from the injection origin.
	At Duration `json:"at"`
	// Duration is the active window for windowed kinds.
	Duration Duration `json:"duration,omitempty"`
	// Kind names the fault (see Kinds).
	Kind string `json:"kind"`
	// Target addresses the component: "link:<name>" (span, lan-trunk,
	// ext-trunk), "sensor:<i>" or "sensor:*", "analyzer:<i>" or
	// "analyzer:*", or empty for IDS-wide kinds (alert-loss,
	// mgmt-outage).
	Target string `json:"target,omitempty"`
	// Severity is the event's baseline intensity in [0,1] (default 1);
	// the sweep multiplies it by the run's severity knob.
	Severity float64 `json:"severity,omitempty"`
	// Period is the flap cycle length for link-flap (default 2s).
	Period Duration `json:"period,omitempty"`
}

// Scenario is a named, ordered composition of fault events plus the
// resilience posture the run should adopt.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Resilience switches on the IDS self-healing layer (heartbeat
	// health tracking, rerouting, bounded retry spooling) for the run.
	Resilience bool    `json:"resilience,omitempty"`
	Events     []Event `json:"events"`
}

// Empty reports whether the scenario injects nothing (the determinism
// guard's configuration).
func (s *Scenario) Empty() bool { return s == nil || len(s.Events) == 0 }

// Validate checks every event against the kind table: known kind,
// plausible target shape, severity in [0,1], durations present where the
// kind needs one. All misconfiguration is caught here, at load time,
// never mid-simulation.
func (s *Scenario) Validate() error {
	if s == nil {
		return nil
	}
	for i, ev := range s.Events {
		spec, ok := knownKinds[ev.Kind]
		if !ok {
			return fmt.Errorf("faults: %s event %d: unknown kind %q (known: %s)",
				s.Name, i, ev.Kind, strings.Join(Kinds(), ", "))
		}
		if ev.At < 0 {
			return fmt.Errorf("faults: %s event %d (%s): negative offset %v", s.Name, i, ev.Kind, ev.At.Std())
		}
		if ev.Severity < 0 || ev.Severity > 1 {
			return fmt.Errorf("faults: %s event %d (%s): severity %v outside [0,1]", s.Name, i, ev.Kind, ev.Severity)
		}
		if spec.needsDuration && ev.Duration <= 0 {
			return fmt.Errorf("faults: %s event %d (%s): needs a positive duration", s.Name, i, ev.Kind)
		}
		switch {
		case spec.needsLink:
			if !strings.HasPrefix(ev.Target, "link:") {
				return fmt.Errorf("faults: %s event %d (%s): target %q must be link:<name>", s.Name, i, ev.Kind, ev.Target)
			}
		case spec.needsSensor:
			if !strings.HasPrefix(ev.Target, "sensor:") {
				return fmt.Errorf("faults: %s event %d (%s): target %q must be sensor:<i> or sensor:*", s.Name, i, ev.Kind, ev.Target)
			}
		case spec.needsAnalyzer:
			if !strings.HasPrefix(ev.Target, "analyzer:") {
				return fmt.Errorf("faults: %s event %d (%s): target %q must be analyzer:<i> or analyzer:*", s.Name, i, ev.Kind, ev.Target)
			}
		default:
			if ev.Target != "" && ev.Target != "mgmt" && ev.Target != "ids" {
				return fmt.Errorf("faults: %s event %d (%s): unexpected target %q", s.Name, i, ev.Kind, ev.Target)
			}
		}
		if ev.Kind == KindLinkFlap && ev.Period < 0 {
			return fmt.Errorf("faults: %s event %d: negative flap period", s.Name, i)
		}
	}
	return nil
}

// Parse decodes and validates a scenario from JSON.
func Parse(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faults: bad scenario: %w", err)
	}
	if s.Name == "" {
		return nil, fmt.Errorf("faults: scenario needs a name")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("faults: %s: %w", path, err)
	}
	return s, nil
}
