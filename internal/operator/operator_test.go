package operator

import (
	"testing"
	"time"

	"repro/internal/ids"
	"repro/internal/simtime"
)

func notif(at time.Duration, severity float64) ids.Notification {
	return ids.Notification{
		At:       at,
		Incident: &ids.ReportedIncident{Technique: "x", Severity: severity, FirstAlert: at, ReportedAt: at},
	}
}

func TestQuietOperatorActsOnSevereAlerts(t *testing.T) {
	sim := simtime.New(1)
	op := New(sim, Config{})
	// Ten severe alerts, well spaced: a rested operator acts on nearly
	// all of them.
	var ns []ids.Notification
	for i := 0; i < 10; i++ {
		ns = append(ns, notif(time.Duration(i)*10*time.Minute, 1.0))
	}
	if err := op.Feed(ns); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	r := op.Report()
	if r.Presented != 10 || r.Unseen != 0 {
		t.Fatalf("report = %+v", r)
	}
	if r.ActedOnRate < 0.8 {
		t.Fatalf("rested operator acted on only %.0f%%", r.ActedOnRate*100)
	}
	if r.FinalVigilance < 0.8 {
		t.Fatalf("vigilance %.2f after a quiet watch", r.FinalVigilance)
	}
}

func TestAlertFloodOverflowsQueue(t *testing.T) {
	sim := simtime.New(1)
	op := New(sim, Config{QueueLimit: 5, TriageTime: 30 * time.Second})
	// 100 alerts in one minute: the queue must overflow and most go
	// unseen — the paper's "IDS being ignored by the operators".
	var ns []ids.Notification
	for i := 0; i < 100; i++ {
		ns = append(ns, notif(time.Duration(i)*600*time.Millisecond, 0.6))
	}
	if err := op.Feed(ns); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	r := op.Report()
	if r.Unseen == 0 {
		t.Fatal("flood did not overflow the operator queue")
	}
	if r.Unseen < 50 {
		t.Fatalf("only %d unseen out of 100 in a flood", r.Unseen)
	}
}

func TestFatigueErodesVigilance(t *testing.T) {
	sim := simtime.New(1)
	op := New(sim, Config{TriageTime: time.Second, QueueLimit: 1000})
	var ns []ids.Notification
	for i := 0; i < 40; i++ {
		ns = append(ns, notif(time.Duration(i)*time.Second, 0.6))
	}
	if err := op.Feed(ns); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if v := op.Vigilance(); v > 0.5 {
		t.Fatalf("vigilance %.2f after 40 back-to-back triages", v)
	}
	// Some dismissals must appear once tired.
	if op.Report().Dismissed == 0 {
		t.Fatal("no cry-wolf dismissals under fatigue")
	}
}

func TestVigilanceRecoversWhenQuiet(t *testing.T) {
	sim := simtime.New(1)
	op := New(sim, Config{TriageTime: time.Second, RecoveryHalfLife: time.Minute, QueueLimit: 1000})
	// Burn the operator down...
	var ns []ids.Notification
	for i := 0; i < 30; i++ {
		ns = append(ns, notif(time.Duration(i)*time.Second, 0.5))
	}
	// ...then one alert after a long quiet spell.
	ns = append(ns, notif(2*time.Hour, 0.5))
	if err := op.Feed(ns); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(90 * time.Second)
	tired := op.Vigilance()
	sim.Run()
	rested := op.Handled[len(op.Handled)-1].Vigilance
	if rested <= tired {
		t.Fatalf("vigilance did not recover: %.2f -> %.2f", tired, rested)
	}
}

func TestSeverityWeightsDecision(t *testing.T) {
	// At reduced vigilance, severe alerts are acted on more often than
	// trivial ones.
	count := func(severity float64) int {
		sim := simtime.New(5)
		op := New(sim, Config{TriageTime: time.Second, QueueLimit: 10000, FatiguePerAlert: 0.015})
		var ns []ids.Notification
		for i := 0; i < 200; i++ {
			ns = append(ns, notif(time.Duration(i)*time.Second, severity))
		}
		if err := op.Feed(ns); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return op.Report().ActedOn
	}
	severe, trivial := count(1.0), count(0.1)
	if severe <= trivial {
		t.Fatalf("severe acted-on %d <= trivial %d", severe, trivial)
	}
}

func TestReportEmpty(t *testing.T) {
	sim := simtime.New(1)
	op := New(sim, Config{})
	r := op.Report()
	if r.Presented != 0 || r.ActedOnRate != 1 {
		t.Fatalf("empty report = %+v", r)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Report {
		sim := simtime.New(9)
		op := New(sim, Config{TriageTime: 2 * time.Second, QueueLimit: 8})
		var ns []ids.Notification
		for i := 0; i < 60; i++ {
			ns = append(ns, notif(time.Duration(i)*3*time.Second, 0.5+float64(i%5)*0.1))
		}
		if err := op.Feed(ns); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return op.Report()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic operator: %+v vs %+v", a, b)
	}
}
