// Package operator models the human dimension of intrusion detection —
// the extension the paper's future work calls for ("we would like to
// expand the scorecard metrics to capture the human dimension of IDS as
// well") and the failure mode Section 2.2 warns about: "frequent alerts
// on trivial or normal events result in a high false-positive rate …
// and lead to the IDS being ignored by the operators."
//
// The model is a single watch-stander with a finite triage rate and an
// attention state that erodes under alert floods: every notification
// joins a triage queue; queue overflow is discarded unseen; sustained
// overload lowers vigilance, which raises the chance that even triaged
// notifications are dismissed without action.
package operator

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/ids"
	"repro/internal/simtime"
)

// Outcome is what happened to one notification at the human.
type Outcome int

// Notification outcomes.
const (
	// ActedOn: the operator triaged and escalated the incident.
	ActedOn Outcome = iota
	// Dismissed: triaged but ignored (fatigue, cry-wolf effect).
	Dismissed
	// Unseen: dropped from an overflowing queue.
	Unseen
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case ActedOn:
		return "acted-on"
	case Dismissed:
		return "dismissed"
	default:
		return "unseen"
	}
}

// Handling records the fate of one notification.
type Handling struct {
	Notification ids.Notification
	Outcome      Outcome
	// HandledAt is when triage completed (zero for Unseen).
	HandledAt time.Duration
	// Vigilance at triage time, for diagnostics.
	Vigilance float64
}

// Config parameterizes the watch-stander.
type Config struct {
	// TriageTime is the attention cost per notification (default 30s).
	TriageTime time.Duration
	// QueueLimit is the number of pending notifications the operator can
	// keep in view (default 12 — a console screenful).
	QueueLimit int
	// RecoveryHalfLife is how fast vigilance recovers when quiet
	// (default 5m).
	RecoveryHalfLife time.Duration
	// FatiguePerAlert is the vigilance fraction each triaged alert
	// burns (default 0.02).
	FatiguePerAlert float64
}

func (c *Config) applyDefaults() {
	if c.TriageTime == 0 {
		c.TriageTime = 30 * time.Second
	}
	if c.QueueLimit == 0 {
		c.QueueLimit = 12
	}
	if c.RecoveryHalfLife == 0 {
		c.RecoveryHalfLife = 5 * time.Minute
	}
	if c.FatiguePerAlert == 0 {
		c.FatiguePerAlert = 0.02
	}
}

// Operator is the watch-stander simulation. Attach it to a monitor by
// feeding it notifications (in time order) and then draining the sim.
type Operator struct {
	sim *simtime.Sim
	cfg Config
	rng *rand.Rand

	queueDepth int
	busyUntil  simtime.Time
	// vigilance in (0,1]: probability weight of acting on a real alert.
	vigilance  float64
	lastTriage simtime.Time
	Handled    []Handling
	queueDrops int
	actedCount int
	dismissed  int
}

// New creates an operator at full vigilance.
func New(sim *simtime.Sim, cfg Config) *Operator {
	cfg.applyDefaults()
	return &Operator{
		sim: sim, cfg: cfg,
		rng:       sim.Stream("operator"),
		vigilance: 1,
	}
}

// Vigilance returns the current attention level in (0,1].
func (o *Operator) Vigilance() float64 { return o.vigilance }

// Notify presents one monitor notification to the operator at the
// current virtual time.
func (o *Operator) Notify(n ids.Notification) {
	if o.queueDepth >= o.cfg.QueueLimit {
		o.queueDrops++
		o.Handled = append(o.Handled, Handling{Notification: n, Outcome: Unseen})
		return
	}
	o.queueDepth++
	now := o.sim.Now()
	start := now
	if o.busyUntil > start {
		start = o.busyUntil
	}
	o.busyUntil = start + o.cfg.TriageTime
	done := o.busyUntil
	o.sim.MustSchedule(done-now, func() { o.triage(n) })
}

// triage completes one notification: recover vigilance for quiet time,
// then burn fatigue, then decide.
func (o *Operator) triage(n ids.Notification) {
	o.queueDepth--
	now := o.sim.Now()
	// Exponential vigilance recovery over idle time since last triage.
	if o.lastTriage > 0 && now > o.lastTriage {
		idle := float64(now-o.lastTriage) / float64(o.cfg.RecoveryHalfLife)
		o.vigilance = 1 - (1-o.vigilance)*math.Pow(0.5, idle)
	}
	o.lastTriage = now
	// Each alert handled erodes attention.
	o.vigilance -= o.cfg.FatiguePerAlert
	if o.vigilance < 0.05 {
		o.vigilance = 0.05
	}
	// Severity-weighted decision: severe incidents get acted on even by
	// a tired operator; marginal ones are dismissed when vigilance is
	// low.
	pAct := o.vigilance * (0.4 + 0.6*n.Incident.Severity)
	h := Handling{Notification: n, HandledAt: now, Vigilance: o.vigilance}
	if o.rng.Float64() < pAct {
		h.Outcome = ActedOn
		o.actedCount++
	} else {
		h.Outcome = Dismissed
		o.dismissed++
	}
	o.Handled = append(o.Handled, h)
}

// Report summarizes the human outcome of a run.
type Report struct {
	Presented int
	ActedOn   int
	Dismissed int
	Unseen    int
	// FinalVigilance is the attention level at the end of the run.
	FinalVigilance float64
	// ActedOnRate is ActedOn / Presented (1 when nothing presented).
	ActedOnRate float64
}

// Report computes the summary.
func (o *Operator) Report() Report {
	r := Report{
		Presented:      len(o.Handled),
		ActedOn:        o.actedCount,
		Dismissed:      o.dismissed,
		Unseen:         o.queueDrops,
		FinalVigilance: o.vigilance,
	}
	if r.Presented > 0 {
		r.ActedOnRate = float64(r.ActedOn) / float64(r.Presented)
	} else {
		r.ActedOnRate = 1
	}
	return r
}

// Feed presents a monitor's notification log to the operator in order,
// scheduling each at its original time. Call before draining the sim.
func (o *Operator) Feed(notifications []ids.Notification) error {
	for _, n := range notifications {
		n := n
		if _, err := o.sim.ScheduleAt(n.At, func() { o.Notify(n) }); err != nil {
			return err
		}
	}
	return nil
}
