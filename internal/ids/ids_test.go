package ids

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/detect"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// stubEngine alerts on payloads containing the byte 'X' with fixed cost.
type stubEngine struct {
	sens    float64
	cost    time.Duration
	trained int
}

func (e *stubEngine) Name() string                { return "stub" }
func (e *stubEngine) Mechanism() detect.Mechanism { return detect.MechanismSignature }
func (e *stubEngine) Train(p *packet.Packet, now time.Duration) {
	e.trained++
}
func (e *stubEngine) Inspect(p *packet.Packet, now time.Duration) []detect.Alert {
	for _, b := range p.Payload {
		if b == 'X' {
			return []detect.Alert{{
				At: now, Technique: "stub-attack", Severity: 0.9,
				Attacker: p.Src, Victim: p.Dst, Flow: p.Key(),
				Reason: "X marker", Engine: "stub",
			}}
		}
	}
	return nil
}
func (e *stubEngine) SetSensitivity(s float64) error {
	if s < 0 || s > 1 {
		return errBadSens
	}
	e.sens = s
	return nil
}
func (e *stubEngine) Sensitivity() float64 { return e.sens }
func (e *stubEngine) CostPerPacket(p *packet.Packet) time.Duration {
	if e.cost > 0 {
		return e.cost
	}
	return time.Microsecond
}

var errBadSens = &badSensErr{}

type badSensErr struct{}

func (*badSensErr) Error() string { return "bad sensitivity" }

func stubFactory() detect.Engine { return &stubEngine{sens: 0.5} }

func attackPkt(srcLast byte) *packet.Packet {
	return &packet.Packet{
		Src: packet.IPv4(203, 0, 1, srcLast), Dst: packet.IPv4(10, 1, 1, 1),
		SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP,
		Payload: []byte("XXXX"),
	}
}

func benignPkt(srcLast byte) *packet.Packet {
	return &packet.Packet{
		Src: packet.IPv4(203, 0, 1, srcLast), Dst: packet.IPv4(10, 1, 1, 1),
		SrcPort: 1234, DstPort: 80, Proto: packet.ProtoTCP,
		Payload: []byte("hello"),
	}
}

func TestNewValidation(t *testing.T) {
	sim := simtime.New(1)
	if _, err := New(sim, Config{Name: "x"}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(sim, Config{Name: "x", Engine: stubFactory, Sensors: 4, Balancer: BalancerNone}); err == nil {
		t.Fatal("multi-sensor with no balancer accepted")
	}
	if _, err := New(sim, Config{Name: "x", Engine: stubFactory, Sensors: -1}); err == nil {
		t.Fatal("negative sensors accepted")
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory})
	if err != nil {
		t.Fatal(err)
	}
	s.Ingest(attackPkt(1))
	s.Ingest(benignPkt(1))
	sim.Run()

	st := s.Stats()
	if st.Processed != 2 {
		t.Fatalf("processed %d", st.Processed)
	}
	if st.AlertsRaised != 1 {
		t.Fatalf("alerts %d", st.AlertsRaised)
	}
	if st.Incidents != 1 {
		t.Fatalf("incidents %d", st.Incidents)
	}
	if st.Notifications != 1 {
		t.Fatalf("notifications %d (severity 0.9 >= default threshold)", st.Notifications)
	}
	inc := s.Monitor().Incidents[0]
	if inc.Technique != "stub-attack" || inc.Attacker != packet.IPv4(203, 0, 1, 1) {
		t.Fatalf("incident %+v", inc)
	}
}

func TestCorrelationFoldsRepeatedAlerts(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, CorrelationWindow: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*100*time.Millisecond, func() { s.Ingest(attackPkt(7)) })
	}
	sim.Run()
	if got := len(s.Monitor().Incidents); got != 1 {
		t.Fatalf("%d incidents, want 1 correlated", got)
	}
	if ac := s.Monitor().Incidents[0].AlertCount; ac != 20 {
		t.Fatalf("AlertCount = %d", ac)
	}
	if n := len(s.Monitor().Notifications); n != 1 {
		t.Fatalf("notifications = %d, want 1 (no renotify)", n)
	}
}

func TestCorrelationWindowExpiry(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, CorrelationWindow: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sim.MustSchedule(0, func() { s.Ingest(attackPkt(7)) })
	sim.MustSchedule(10*time.Second, func() { s.Ingest(attackPkt(7)) })
	sim.Run()
	if got := len(s.Monitor().Incidents); got != 2 {
		t.Fatalf("%d incidents, want 2 (window expired)", got)
	}
}

func TestDistinctAttackersDistinctIncidents(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "test", Engine: stubFactory})
	s.Ingest(attackPkt(1))
	s.Ingest(attackPkt(2))
	sim.Run()
	if got := len(s.Monitor().Incidents); got != 2 {
		t.Fatalf("%d incidents, want 2", got)
	}
}

func TestFlowHashKeepsSessionOnOneSensor(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, Sensors: 4, Balancer: BalancerFlowHash})
	if err != nil {
		t.Fatal(err)
	}
	fwd := &packet.Packet{Src: 1, Dst: 2, SrcPort: 10, DstPort: 20, Proto: packet.ProtoTCP}
	rev := &packet.Packet{Src: 2, Dst: 1, SrcPort: 20, DstPort: 10, Proto: packet.ProtoTCP}
	a := s.pickSensor(fwd)
	b := s.pickSensor(rev)
	if a != b {
		t.Fatal("session directions landed on different sensors")
	}
}

func TestDynamicBalancerPinsFlows(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, Sensors: 3, Balancer: BalancerDynamic})
	if err != nil {
		t.Fatal(err)
	}
	p := &packet.Packet{Src: 9, Dst: 8, SrcPort: 1, DstPort: 2, Proto: packet.ProtoTCP}
	first := s.pickSensor(p)
	for i := 0; i < 10; i++ {
		if s.pickSensor(p) != first {
			t.Fatal("pinned flow moved sensors")
		}
	}
}

func TestDynamicBalancerSpreadsLoad(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, Sensors: 4, Balancer: BalancerDynamic})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		p := benignPkt(byte(i % 200))
		p.SrcPort = uint16(i)
		s.Ingest(p)
	}
	sim.Run()
	for i, sn := range s.Sensors() {
		if sn.Processed == 0 {
			t.Fatalf("sensor %d starved under dynamic balancing", i)
		}
	}
}

func TestStaticBalancerCanStarve(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, Sensors: 4, Balancer: BalancerStatic})
	if err != nil {
		t.Fatal(err)
	}
	// All traffic from one subnet: static placement sends it to one sensor.
	for i := 0; i < 100; i++ {
		s.Ingest(benignPkt(5))
	}
	sim.Run()
	active := 0
	for _, sn := range s.Sensors() {
		if sn.Processed > 0 {
			active++
		}
	}
	if active != 1 {
		t.Fatalf("static placement used %d sensors for single-subnet traffic", active)
	}
}

func TestSensorOverloadDrops(t *testing.T) {
	sim := simtime.New(1)
	slow := func() detect.Engine { return &stubEngine{sens: 0.5, cost: time.Millisecond} }
	s, err := New(sim, Config{Name: "test", Engine: slow, SensorQueue: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Ingest(benignPkt(1))
	}
	sim.Run()
	st := s.Stats()
	if st.SensorDropped == 0 {
		t.Fatal("no drops under overload")
	}
	if st.Processed+st.SensorDropped != 100 {
		t.Fatalf("conservation: %d + %d != 100", st.Processed, st.SensorDropped)
	}
}

func TestLethalDoseFailsAndRestarts(t *testing.T) {
	sim := simtime.New(1)
	slow := func() detect.Engine { return &stubEngine{sens: 0.5, cost: 10 * time.Millisecond} }
	s, err := New(sim, Config{
		Name: "test", Engine: slow, SensorQueue: 4,
		LethalDropsPerSec: 50, FailureMode: FailCrash, RestartAfter: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*time.Millisecond, func() { s.Ingest(benignPkt(1)) })
	}
	sim.RunUntil(time.Second)
	sensor := s.Sensors()[0]
	if sensor.State() != SensorFailed {
		t.Fatal("sensor survived lethal dose")
	}
	if sensor.Failures != 1 {
		t.Fatalf("Failures = %d", sensor.Failures)
	}
	sim.RunUntil(20 * time.Second)
	if sensor.State() != SensorUp {
		t.Fatal("sensor did not restart")
	}
	if sensor.Downtime() < 5*time.Second {
		t.Fatalf("downtime %v", sensor.Downtime())
	}
}

func TestFailClosedPassVerdict(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, FailureMode: FailClosed})
	if err != nil {
		t.Fatal(err)
	}
	sensor := s.Sensors()[0]
	if !s.Ingest(benignPkt(1)) {
		t.Fatal("healthy fail-closed sensor blocked traffic")
	}
	sensor.fail(sim.Now())
	if s.Ingest(benignPkt(1)) {
		t.Fatal("failed fail-closed sensor passed traffic")
	}
	// Fail-open keeps passing.
	s2, _ := New(sim, Config{Name: "t2", Engine: stubFactory, FailureMode: FailOpen})
	s2.Sensors()[0].fail(sim.Now())
	if !s2.Ingest(benignPkt(1)) {
		t.Fatal("failed fail-open sensor blocked traffic")
	}
}

func TestSeparateAnalysisAddsLatencyAndOverhead(t *testing.T) {
	run := func(separate bool) (time.Duration, uint64) {
		sim := simtime.New(1)
		s, err := New(sim, Config{
			Name: "test", Engine: stubFactory,
			SeparateAnalysis: separate, AnalysisLatency: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.Ingest(attackPkt(1))
		sim.Run()
		if len(s.Monitor().Incidents) != 1 {
			t.Fatal("no incident")
		}
		return s.Monitor().Incidents[0].ReportedAt, s.Stats().AlertNetBytes
	}
	fusedAt, fusedBytes := run(false)
	sepAt, sepBytes := run(true)
	if sepAt <= fusedAt {
		t.Fatalf("separated analysis not slower: %v vs %v", sepAt, fusedAt)
	}
	if fusedBytes != 0 || sepBytes == 0 {
		t.Fatalf("alert net bytes: fused=%d sep=%d", fusedBytes, sepBytes)
	}
}

func TestConsoleFirewallResponse(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "test", Engine: stubFactory, HasConsole: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Console().SetPolicy("stub-attack", ActionFirewallBlock)
	s.Ingest(attackPkt(9))
	sim.Run()
	attacker := packet.IPv4(203, 0, 1, 9)
	if !s.Console().Firewall.Blocked(attacker) {
		t.Fatal("attacker not blocked")
	}
	// Subsequent traffic from the attacker is filtered at ingest.
	if s.Ingest(attackPkt(9)) {
		t.Fatal("blocked source passed")
	}
	if s.Console().Firewall.FilteredPackets != 1 {
		t.Fatalf("FilteredPackets = %d", s.Console().Firewall.FilteredPackets)
	}
	// Unblock restores flow.
	s.Console().Unblock(attacker)
	if !s.Ingest(attackPkt(9)) {
		t.Fatal("unblocked source still filtered")
	}
}

func TestConsoleSNMPAndRedirect(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "test", Engine: stubFactory, HasConsole: true})
	s.Console().SetPolicy("stub-attack", ActionSNMPTrap)
	s.Ingest(attackPkt(3))
	sim.Run()
	if len(s.Console().SNMPTraps) != 1 {
		t.Fatalf("traps = %d", len(s.Console().SNMPTraps))
	}
	s.Console().SetPolicy("stub-attack", ActionRouterRedirect)
	s.Ingest(attackPkt(4))
	sim.Run()
	if len(s.Console().Redirects) != 1 {
		t.Fatalf("redirects = %d", len(s.Console().Redirects))
	}
}

func TestConsolePushSensitivity(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "test", Engine: stubFactory, Sensors: 3, Balancer: BalancerFlowHash, HasConsole: true})
	if err := s.Console().PushSensitivity(0.8); err != nil {
		t.Fatal(err)
	}
	for _, sn := range s.Sensors() {
		if sn.Engine().Sensitivity() != 0.8 {
			t.Fatal("sensitivity not pushed to all sensors")
		}
	}
	if s.Console().ConfigPushes != 1 {
		t.Fatalf("ConfigPushes = %d", s.Console().ConfigPushes)
	}
}

func TestMonitorQuery(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "test", Engine: stubFactory})
	sim.MustSchedule(time.Second, func() { s.Ingest(attackPkt(1)) })
	sim.MustSchedule(10*time.Second, func() { s.Ingest(attackPkt(2)) })
	sim.Run()
	if got := s.Monitor().Query(0, 5*time.Second); len(got) != 1 {
		t.Fatalf("query [0,5s] = %d incidents", len(got))
	}
	if got := s.Monitor().Query(0, time.Minute); len(got) != 2 {
		t.Fatalf("query [0,1m] = %d incidents", len(got))
	}
}

func TestTrainReachesAllSensors(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "test", Engine: stubFactory, Sensors: 3, Balancer: BalancerFlowHash})
	s.Train(benignPkt(1))
	for _, sn := range s.Sensors() {
		if sn.Engine().(*stubEngine).trained != 1 {
			t.Fatal("training did not reach every sensor")
		}
	}
}

func TestMonitorThresholdSuppressesLowSeverity(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "test", Engine: stubFactory, NotifyThreshold: 0.95})
	s.Ingest(attackPkt(1)) // severity 0.9 < 0.95
	sim.Run()
	if len(s.Monitor().Incidents) != 1 {
		t.Fatal("incident not recorded")
	}
	if len(s.Monitor().Notifications) != 0 {
		t.Fatal("notification despite sub-threshold severity")
	}
}

// Property: the Figure-2 cardinalities hold for arbitrary sensor/analyzer
// pool sizes — one conditional balancer for all sensors, every sensor
// mapped to exactly one analyzer, exactly one monitor, at most one
// console.
func TestPropertyCardinality(t *testing.T) {
	f := func(sensorsRaw, analyzersRaw uint8, console bool, balancerRaw uint8) bool {
		sensors := int(sensorsRaw%16) + 1
		analyzers := int(analyzersRaw%8) + 1
		balancer := BalancerKind(balancerRaw % 4)
		if balancer == BalancerNone && sensors > 1 {
			balancer = BalancerFlowHash
		}
		sim := simtime.New(1)
		s, err := New(sim, Config{
			Name: "prop", Engine: stubFactory,
			Sensors: sensors, Analyzers: analyzers,
			Balancer: balancer, HasConsole: console,
		})
		if err != nil {
			return false
		}
		c := s.Cardinality()
		if c.Monitors != 1 {
			return false
		}
		if c.Balancers > 1 || (c.Balancers == 1 && c.SensorsPerLB != sensors) {
			return false
		}
		if console != (c.Consoles == 1) {
			return false
		}
		if len(c.SensorToAnalyze) != sensors {
			return false
		}
		for _, a := range c.SensorToAnalyze {
			if a < 0 || a >= analyzers {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIngestPipeline(b *testing.B) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "bench", Engine: stubFactory, Sensors: 4, Balancer: BalancerFlowHash})
	if err != nil {
		b.Fatal(err)
	}
	p := benignPkt(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.SrcPort = uint16(i)
		s.Ingest(p)
		if i%1024 == 0 {
			sim.Run()
		}
	}
	sim.Run()
}

func TestInformationSharingPropagatesBlocks(t *testing.T) {
	sim := simtime.New(1)
	a, err := New(sim, Config{Name: "site-a", Engine: stubFactory, HasConsole: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(sim, Config{Name: "site-b", Engine: stubFactory, HasConsole: true})
	if err != nil {
		t.Fatal(err)
	}
	a.Console().SetPolicy("stub-attack", ActionFirewallBlock)
	a.Console().ShareWith(b.Console())
	a.Console().ShareWith(b.Console()) // duplicate registration is a no-op
	b.Console().ShareWith(a.Console()) // ring must not loop

	attacker := packet.IPv4(203, 0, 1, 9)
	a.Ingest(attackPkt(9))
	sim.Run()

	if !a.Console().Firewall.Blocked(attacker) {
		t.Fatal("origin site did not block")
	}
	if !b.Console().Firewall.Blocked(attacker) {
		t.Fatal("peer site did not learn the block")
	}
	if b.Console().SharedBlocksIn != 1 {
		t.Fatalf("SharedBlocksIn = %d", b.Console().SharedBlocksIn)
	}
	// One-hop propagation: site A must not double-count its own block.
	if a.Console().SharedBlocksIn != 0 {
		t.Fatalf("origin learned its own block back: %d", a.Console().SharedBlocksIn)
	}
	// Peer now filters the attacker without ever seeing the attack.
	if b.Ingest(attackPkt(9)) {
		t.Fatal("peer passed traffic from a shared-blocked source")
	}
}

func TestShareWithSelfIgnored(t *testing.T) {
	sim := simtime.New(1)
	a, _ := New(sim, Config{Name: "solo", Engine: stubFactory, HasConsole: true})
	a.Console().ShareWith(a.Console())
	a.Console().ShareWith(nil)
	a.Console().SetPolicy("stub-attack", ActionFirewallBlock)
	a.Ingest(attackPkt(9))
	sim.Run() // must terminate (no self-loop)
	if !a.Console().Firewall.Blocked(packet.IPv4(203, 0, 1, 9)) {
		t.Fatal("block not applied")
	}
}

func TestDataPoolExcludeRules(t *testing.T) {
	pool := ClusterExclusionPool()
	if err := pool.Validate(); err != nil {
		t.Fatal(err)
	}
	rpc := &packet.Packet{
		Src: packet.IPv4(10, 1, 1, 1), Dst: packet.IPv4(10, 1, 1, 2),
		SrcPort: 7400, DstPort: 7400, Proto: packet.ProtoUDP,
	}
	if pool.Selects(rpc) {
		t.Fatal("cluster RPC not excluded")
	}
	// Bulk replication east-west excluded; the same service from outside
	// is NOT (the prefix rules bind it to the LAN).
	bulkEW := &packet.Packet{
		Src: packet.IPv4(10, 1, 1, 1), Dst: packet.IPv4(10, 1, 1, 2),
		SrcPort: 40000, DstPort: 20, Proto: packet.ProtoTCP,
	}
	if pool.Selects(bulkEW) {
		t.Fatal("east-west replication not excluded")
	}
	bulkExt := &packet.Packet{
		Src: packet.IPv4(203, 0, 1, 1), Dst: packet.IPv4(10, 1, 1, 2),
		SrcPort: 40000, DstPort: 20, Proto: packet.ProtoTCP,
	}
	if !pool.Selects(bulkExt) {
		t.Fatal("external traffic to port 20 wrongly excluded")
	}
	// Attack-relevant traffic passes.
	http := &packet.Packet{
		Src: packet.IPv4(203, 0, 1, 1), Dst: packet.IPv4(10, 1, 1, 2),
		SrcPort: 40000, DstPort: 80, Proto: packet.ProtoTCP,
	}
	if !pool.Selects(http) {
		t.Fatal("HTTP excluded")
	}
}

func TestDataPoolIncludeSemantics(t *testing.T) {
	pool := &DataPool{Include: []PoolRule{{Name: "dns-only", Proto: packet.ProtoUDP, Port: 53}}}
	dns := &packet.Packet{Proto: packet.ProtoUDP, SrcPort: 4000, DstPort: 53}
	other := &packet.Packet{Proto: packet.ProtoTCP, SrcPort: 4000, DstPort: 80}
	if !pool.Selects(dns) || pool.Selects(other) {
		t.Fatal("include semantics wrong")
	}
	// Exclude beats include.
	pool.Exclude = []PoolRule{{Name: "no-dns", Proto: packet.ProtoUDP, Port: 53}}
	if pool.Selects(dns) {
		t.Fatal("exclude did not override include")
	}
}

func TestDataPoolValidation(t *testing.T) {
	bad := &DataPool{Include: []PoolRule{{Name: "x", SrcBits: 40}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid prefix bits accepted")
	}
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "pool", Engine: stubFactory})
	if err := s.SetDataPool(bad); err == nil {
		t.Fatal("SetDataPool accepted invalid pool")
	}
	if err := s.SetDataPool(ClusterExclusionPool()); err != nil {
		t.Fatal(err)
	}
	if s.DataPool() == nil {
		t.Fatal("pool not installed")
	}
	if err := s.SetDataPool(nil); err != nil {
		t.Fatal(err)
	}
}

func TestDataPoolSkipsAnalysisButPassesTraffic(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "pool", Engine: stubFactory})
	if err := s.SetDataPool(&DataPool{Exclude: []PoolRule{{Name: "no-80", Port: 80}}}); err != nil {
		t.Fatal(err)
	}
	// An attack packet on the excluded service: passed through (verdict
	// true), never analyzed, no alert — selectability is a blind spot by
	// design.
	if !s.Ingest(attackPkt(1)) {
		t.Fatal("excluded packet was blocked")
	}
	sim.Run()
	if s.PoolSkipped != 1 {
		t.Fatalf("PoolSkipped = %d", s.PoolSkipped)
	}
	if s.Stats().Processed != 0 || len(s.Monitor().Incidents) != 0 {
		t.Fatal("excluded packet was analyzed")
	}
	if s.DataPool().String() == "all traffic" {
		t.Fatal("pool description wrong")
	}
}

func TestBalancerCostDelaysSensing(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{
		Name: "lb-cost", Engine: stubFactory,
		Sensors: 2, Balancer: ids0FlowHash(), BalancerCost: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Ingest(benignPkt(1))
	// Nothing processed before the balancer cost elapses.
	sim.RunUntil(time.Millisecond)
	if s.Stats().Processed != 0 {
		t.Fatal("packet sensed before balancer latency elapsed")
	}
	sim.Run()
	if s.Stats().Processed != 1 {
		t.Fatalf("processed = %d", s.Stats().Processed)
	}
}

// ids0FlowHash avoids a bare constant in the test body reading oddly.
func ids0FlowHash() BalancerKind { return BalancerFlowHash }

func TestStatsAggregatesAcrossSensors(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "agg", Engine: stubFactory, Sensors: 3, Balancer: BalancerDynamic})
	for i := 0; i < 30; i++ {
		p := attackPkt(byte(i%5 + 1))
		p.SrcPort = uint16(i)
		s.Ingest(p)
	}
	sim.Run()
	st := s.Stats()
	if st.Ingested != 30 || st.Processed != 30 {
		t.Fatalf("stats = %+v", st)
	}
	var perSensor uint64
	for _, sn := range s.Sensors() {
		perSensor += sn.Processed
	}
	if perSensor != st.Processed {
		t.Fatalf("per-sensor sum %d != aggregate %d", perSensor, st.Processed)
	}
}
