package ids

import (
	"testing"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func TestClassifyIntent(t *testing.T) {
	cases := map[string]Intent{
		"portscan":       IntentReconnaissance,
		"synflood":       IntentDenial,
		"exploit":        IntentPenetration,
		"bruteforce":     IntentPenetration,
		"masquerade":     IntentEscalation,
		"dns-tunnel":     IntentExfiltration,
		"insider-misuse": IntentExfiltration,
		"made-up-label":  IntentUnknown,
	}
	for tech, want := range cases {
		if got := ClassifyIntent(tech); got != want {
			t.Errorf("ClassifyIntent(%q) = %v, want %v", tech, got, want)
		}
	}
}

func TestIntentStageOrdering(t *testing.T) {
	// Campaign stages must order recon < denial < penetration <
	// escalation < exfiltration so "furthest stage" is meaningful.
	if !(IntentReconnaissance < IntentDenial &&
		IntentDenial < IntentPenetration &&
		IntentPenetration < IntentEscalation &&
		IntentEscalation < IntentExfiltration) {
		t.Fatal("intent progression ordering broken")
	}
}

// reportIncident injects a synthetic incident into a monitor.
func reportIncident(m *Monitor, technique string, attacker, victim packet.Addr, at time.Duration) {
	m.Report(&ReportedIncident{
		Attacker: attacker, Victim: victim, Technique: technique,
		Severity: 0.8, FirstAlert: at, LastAlert: at, ReportedAt: at, AlertCount: 1,
	})
}

func TestIntentReportProfilesAttackers(t *testing.T) {
	sim := simtime.New(1)
	m := NewMonitor(sim, 0.5)
	atkA := packet.IPv4(203, 0, 1, 1)
	atkB := packet.IPv4(203, 0, 1, 2)
	v1 := packet.IPv4(10, 1, 1, 1)
	v2 := packet.IPv4(10, 1, 1, 2)

	// Attacker A: full campaign — scan, exploit, masquerade — two victims.
	reportIncident(m, "portscan", atkA, v1, time.Second)
	reportIncident(m, "exploit", atkA, v1, 2*time.Second)
	reportIncident(m, "masquerade", atkA, v2, 3*time.Second)
	// Attacker B: a lone flood.
	reportIncident(m, "synflood", atkB, v1, 4*time.Second)

	profiles := m.IntentReport()
	if len(profiles) != 2 {
		t.Fatalf("%d profiles, want 2", len(profiles))
	}
	// Most-advanced attacker first.
	a := profiles[0]
	if a.Attacker != atkA {
		t.Fatalf("first profile = %v, want the escalated attacker", a.Attacker)
	}
	if a.Stage != IntentEscalation {
		t.Fatalf("stage = %v, want escalation", a.Stage)
	}
	if a.Victims != 2 || a.Incidents != 3 {
		t.Fatalf("profile = %+v", a)
	}
	if a.Intents[IntentReconnaissance] != 1 || a.Intents[IntentPenetration] != 1 {
		t.Fatalf("intent counts = %v", a.Intents)
	}
	if a.FirstSeen != time.Second || a.LastSeen != 3*time.Second {
		t.Fatalf("activity window %v..%v", a.FirstSeen, a.LastSeen)
	}
	b := profiles[1]
	if b.Stage != IntentDenial || b.Victims != 1 {
		t.Fatalf("second profile = %+v", b)
	}
}

func TestIntentReportSkipsUnattributed(t *testing.T) {
	sim := simtime.New(1)
	m := NewMonitor(sim, 0.5)
	reportIncident(m, "ids-sensor-failure", 0, 0, time.Second)
	if got := m.IntentReport(); len(got) != 0 {
		t.Fatalf("unattributed incident produced %d profiles", len(got))
	}
}

func TestIntentReportEndToEnd(t *testing.T) {
	// Through the real pipeline: stub engine technique maps to Unknown,
	// so the profile still builds with the Unknown stage.
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "intent", Engine: stubFactory})
	if err != nil {
		t.Fatal(err)
	}
	s.Ingest(attackPkt(5))
	sim.Run()
	profiles := s.Monitor().IntentReport()
	if len(profiles) != 1 {
		t.Fatalf("%d profiles", len(profiles))
	}
	if profiles[0].Stage != IntentUnknown {
		t.Fatalf("stub technique mapped to %v", profiles[0].Stage)
	}
}
