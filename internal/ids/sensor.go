package ids

import (
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// SensorState is a sensor's operational state.
type SensorState int

// Sensor states.
const (
	SensorUp SensorState = iota
	SensorFailed
)

// String names the state.
func (s SensorState) String() string {
	if s == SensorFailed {
		return "failed"
	}
	return "up"
}

// Sensor is the sensing subprocess: it runs a detection engine over its
// share of traffic with a finite processing budget. Overload first drops
// packets (the zero-loss-throughput boundary) and, sustained past the
// lethal rate, kills the sensor (the network-lethal-dose boundary).
type Sensor struct {
	sim    *simtime.Sim
	id     int
	engine detect.Engine

	queueDepth int
	queueLimit int
	busyUntil  simtime.Time

	state        SensorState
	failureMode  FailureMode
	lethalRate   int // drops/sec that kill the sensor; 0 = indestructible
	restartAfter time.Duration

	// drop-rate tracking (tumbling 1s window)
	dropWindowStart simtime.Time
	dropsThisWindow int

	// SpeedFactor scales processing speed (see Config.SensorSpeedFactor).
	SpeedFactor float64

	// Fault-injection state. hung suppresses automatic restart until
	// InjectRecover; slowScale in (0,1) derates processing speed.
	hung      bool
	slowScale float64

	// deliver forwards alerts toward the analyzer.
	deliver func(alerts []detect.Alert)
	// onStateChange reports failure (false) and recovery (true) to the
	// owning IDS for self-health reporting.
	onStateChange func(recovered bool)

	// Counters.
	Processed uint64
	Dropped   uint64
	Failures  int
	// FailedDuration accumulates downtime.
	FailedDuration time.Duration
	failedAt       simtime.Time
	// BusyTime accumulates engine processing time for utilization and
	// host-impact accounting.
	BusyTime time.Duration

	// Telemetry instruments; nil (free no-ops) unless instrumented.
	cPicked, cProcessed, cDropped *obs.Counter
	gQueue                        *obs.Gauge
	hScanSim                      *obs.Histogram // modeled per-packet scan cost
	hScanWall                     *obs.Histogram // real engine.Inspect time
}

// instrument registers the sensor's telemetry under the given prefix.
func (s *Sensor) instrument(reg *obs.Registry, base string) {
	s.cProcessed = reg.Counter(base + "processed")
	s.cDropped = reg.Counter(base + "dropped")
	s.gQueue = reg.Gauge(base + "queue_depth")
	s.hScanSim = reg.Histogram(base+"scan_cost_ns", obs.ClockSim)
	s.hScanWall = reg.Histogram(base+"scan_wall_ns", obs.ClockWall)
}

// NewSensor builds one sensor.
func NewSensor(sim *simtime.Sim, id int, engine detect.Engine, queueLimit int, mode FailureMode, lethalRate int, restartAfter time.Duration) *Sensor {
	return &Sensor{
		sim: sim, id: id, engine: engine,
		queueLimit: queueLimit, failureMode: mode,
		lethalRate: lethalRate, restartAfter: restartAfter,
	}
}

// ID returns the sensor's index.
func (s *Sensor) ID() int { return s.id }

// Engine exposes the sensor's detection engine.
func (s *Sensor) Engine() detect.Engine { return s.engine }

// State returns the operational state.
func (s *Sensor) State() SensorState { return s.state }

// QueueDepth returns pending packets (the dynamic balancer's load signal).
func (s *Sensor) QueueDepth() int { return s.queueDepth }

// QueueLimit returns the sensor's pending-packet bound.
func (s *Sensor) QueueLimit() int { return s.queueLimit }

// PassVerdict reports whether an in-line deployment should keep
// forwarding traffic given this sensor's state: false only for a
// fail-closed sensor that is down.
func (s *Sensor) PassVerdict() bool {
	return !(s.state == SensorFailed && s.failureMode == FailClosed)
}

// Offer hands the sensor one packet.
func (s *Sensor) Offer(p *packet.Packet) {
	now := s.sim.Now()
	if s.state == SensorFailed {
		// A failed sensor inspects nothing. Fail-open silently misses;
		// the drop counter records the blindness either way.
		s.Dropped++
		s.cDropped.Inc()
		return
	}
	if s.queueDepth >= s.queueLimit {
		s.Dropped++
		s.cDropped.Inc()
		s.noteDrop(now)
		return
	}
	cost := s.engine.CostPerPacket(p)
	if s.SpeedFactor > 0 && s.SpeedFactor != 1 {
		cost = time.Duration(float64(cost) / s.SpeedFactor)
	}
	if s.slowScale > 0 && s.slowScale < 1 {
		cost = time.Duration(float64(cost) / s.slowScale)
	}
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + cost
	s.queueDepth++
	s.gQueue.Set(int64(s.queueDepth))
	s.BusyTime += cost
	s.hScanSim.Observe(int64(cost))
	done := s.busyUntil
	s.sim.MustSchedule(done-now, func() {
		s.queueDepth--
		s.gQueue.Set(int64(s.queueDepth))
		if s.state == SensorFailed {
			return
		}
		s.Processed++
		s.cProcessed.Inc()
		// Wall-clock scan timing: real harness cost of the detection
		// engine, as opposed to the modeled sim cost above. Reading the
		// wall clock never touches the simulation, so determinism holds.
		var t0 time.Time
		if s.hScanWall != nil {
			t0 = time.Now()
		}
		alerts := s.engine.Inspect(p, s.sim.Now())
		if s.hScanWall != nil {
			s.hScanWall.Observe(int64(time.Since(t0)))
		}
		if len(alerts) > 0 && s.deliver != nil {
			s.deliver(alerts)
		}
	})
}

// noteDrop tracks the drop rate and triggers lethal-dose failure.
func (s *Sensor) noteDrop(now simtime.Time) {
	if s.lethalRate <= 0 {
		return
	}
	if now-s.dropWindowStart > time.Second {
		s.dropWindowStart = now
		s.dropsThisWindow = 0
	}
	s.dropsThisWindow++
	if s.dropsThisWindow >= s.lethalRate {
		s.fail(now)
	}
}

// fail transitions the sensor to the failed state and arms restart.
func (s *Sensor) fail(now simtime.Time) {
	if s.state == SensorFailed {
		return
	}
	s.state = SensorFailed
	s.Failures++
	s.failedAt = now
	if s.onStateChange != nil {
		s.onStateChange(false)
	}
	if s.restartAfter > 0 {
		s.sim.MustSchedule(s.restartAfter, s.restart)
	}
}

// restart revives a failed sensor ("fatal errors cause restart of
// application(s) or service(s)" — the metric's high-score anchor). A
// hung sensor ignores its restart timer: a wedged process does not come
// back on its own.
func (s *Sensor) restart() {
	if s.state != SensorFailed || s.hung {
		return
	}
	s.FailedDuration += s.sim.Now() - s.failedAt
	s.state = SensorUp
	s.dropsThisWindow = 0
	s.dropWindowStart = s.sim.Now()
	if s.onStateChange != nil {
		s.onStateChange(true)
	}
}

// InjectCrash forces the sensor into the failed state, exactly as if the
// lethal dose had been reached: the product's own RestartAfter (if any)
// governs recovery, and failure-mode semantics apply unchanged. The
// sensor cannot tell an injected crash from an organic one — the fault
// harness's transparency contract.
func (s *Sensor) InjectCrash() { s.fail(s.sim.Now()) }

// InjectHang wedges the sensor: failed, and deaf to its own restart
// timer until InjectRecover. Models a process that is alive but stuck,
// which no watchdog-restart policy can clear.
func (s *Sensor) InjectHang() {
	s.hung = true
	s.fail(s.sim.Now())
}

// InjectRecover clears a hang (or any failure) and revives the sensor
// immediately — the injector's "operator intervention" at fault end.
func (s *Sensor) InjectRecover() {
	s.hung = false
	s.restart()
}

// InjectSlowdown derates processing speed by scale in (0,1) — a sensor
// limping through a slow restart or resource exhaustion. 0 or >=1
// restores nominal speed.
func (s *Sensor) InjectSlowdown(scale float64) {
	if scale <= 0 || scale >= 1 {
		s.slowScale = 0
		return
	}
	s.slowScale = scale
}

// Downtime returns accumulated failed time, including an ongoing outage.
func (s *Sensor) Downtime() time.Duration {
	d := s.FailedDuration
	if s.state == SensorFailed {
		d += s.sim.Now() - s.failedAt
	}
	return d
}
