package ids

import (
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// SensorState is a sensor's operational state.
type SensorState int

// Sensor states.
const (
	SensorUp SensorState = iota
	SensorFailed
)

// String names the state.
func (s SensorState) String() string {
	if s == SensorFailed {
		return "failed"
	}
	return "up"
}

// Sensor is the sensing subprocess: it runs a detection engine over its
// share of traffic with a finite processing budget. Overload first drops
// packets (the zero-loss-throughput boundary) and, sustained past the
// lethal rate, kills the sensor (the network-lethal-dose boundary).
type Sensor struct {
	sim    *simtime.Sim
	id     int
	engine detect.Engine

	queueDepth int
	queueLimit int
	busyUntil  simtime.Time

	state        SensorState
	failureMode  FailureMode
	lethalRate   int // drops/sec that kill the sensor; 0 = indestructible
	restartAfter time.Duration

	// drop-rate tracking (tumbling 1s window)
	dropWindowStart simtime.Time
	dropsThisWindow int

	// SpeedFactor scales processing speed (see Config.SensorSpeedFactor).
	SpeedFactor float64

	// Fault-injection state. hung suppresses automatic restart until
	// InjectRecover; slowScale in (0,1) derates processing speed.
	hung      bool
	slowScale float64

	// deliver forwards alerts toward the analyzer.
	deliver func(alerts []detect.Alert)
	// onStateChange reports failure (false) and recovery (true) to the
	// owning IDS for self-health reporting.
	onStateChange func(recovered bool)

	// pending is the FIFO of queued packets awaiting inspection. Each
	// entry still gets its own sim event at exactly the instant the old
	// per-packet closure fired (so event order is untouched); the ring
	// replaces the per-packet closure capture and carries batched-scan
	// memo state.
	pending pendingRing
	// prescan is non-nil when the engine supports batched payload
	// scanning; inspectFn is the shared event callback, bound once.
	prescan   detect.Prescanning
	inspectFn func()
	// scratch reuses the payload-batch slice across scan cycles.
	scratch [][]byte

	// BatchScans counts batched scan cycles; BatchPackets counts packets
	// whose payload scan rode a batch.
	BatchScans   uint64
	BatchPackets uint64

	// Counters.
	Processed uint64
	Dropped   uint64
	Failures  int
	// FailedDuration accumulates downtime.
	FailedDuration time.Duration
	failedAt       simtime.Time
	// BusyTime accumulates engine processing time for utilization and
	// host-impact accounting.
	BusyTime time.Duration

	// Telemetry instruments; nil (free no-ops) unless instrumented.
	cPicked, cProcessed, cDropped *obs.Counter
	cBatchScans, cBatchPkts       *obs.Counter
	gQueue                        *obs.Gauge
	hScanSim                      *obs.Histogram // modeled per-packet scan cost
	hScanWall                     *obs.Histogram // real engine.Inspect time
}

// instrument registers the sensor's telemetry under the given prefix.
func (s *Sensor) instrument(reg *obs.Registry, base string) {
	s.cProcessed = reg.Counter(base + "processed")
	s.cDropped = reg.Counter(base + "dropped")
	s.cBatchScans = reg.Counter(base + "batch_scans")
	s.cBatchPkts = reg.Counter(base + "batch_packets")
	s.gQueue = reg.Gauge(base + "queue_depth")
	s.hScanSim = reg.Histogram(base+"scan_cost_ns", obs.ClockSim)
	s.hScanWall = reg.Histogram(base+"scan_wall_ns", obs.ClockWall)
}

// NewSensor builds one sensor.
func NewSensor(sim *simtime.Sim, id int, engine detect.Engine, queueLimit int, mode FailureMode, lethalRate int, restartAfter time.Duration) *Sensor {
	s := &Sensor{
		sim: sim, id: id, engine: engine,
		queueLimit: queueLimit, failureMode: mode,
		lethalRate: lethalRate, restartAfter: restartAfter,
	}
	s.prescan, _ = engine.(detect.Prescanning)
	s.inspectFn = s.inspectNext
	return s
}

// SetDeliver installs the alert path for a standalone sensor — one built
// outside an IDS assembly (ids.New wires its own). The sharded testbed
// uses this to route each segment sensor's alerts straight to its
// domain-local analyzer.
func (s *Sensor) SetDeliver(fn func(alerts []detect.Alert)) { s.deliver = fn }

// pendingEntry is one queued packet plus its batched-scan memo: once a
// scan cycle has covered the entry, idx points at its match set in the
// engine's prescan batch.
type pendingEntry struct {
	p       *packet.Packet
	scanned bool
	idx     int32
}

// pendingRing is a growable FIFO of pendingEntry (power-of-two ring).
type pendingRing struct {
	buf  []pendingEntry
	head int
	n    int
}

func (r *pendingRing) push(p *packet.Packet) {
	if r.n == len(r.buf) {
		grown := make([]pendingEntry, max(16, 2*len(r.buf)))
		for i := 0; i < r.n; i++ {
			grown[i] = *r.at(i)
		}
		r.buf, r.head = grown, 0
	}
	*r.at(r.n) = pendingEntry{p: p}
	r.n++
}

func (r *pendingRing) at(i int) *pendingEntry {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *pendingRing) pop() {
	*r.at(0) = pendingEntry{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
}

// ID returns the sensor's index.
func (s *Sensor) ID() int { return s.id }

// Engine exposes the sensor's detection engine.
func (s *Sensor) Engine() detect.Engine { return s.engine }

// State returns the operational state.
func (s *Sensor) State() SensorState { return s.state }

// QueueDepth returns pending packets (the dynamic balancer's load signal).
func (s *Sensor) QueueDepth() int { return s.queueDepth }

// QueueLimit returns the sensor's pending-packet bound.
func (s *Sensor) QueueLimit() int { return s.queueLimit }

// PassVerdict reports whether an in-line deployment should keep
// forwarding traffic given this sensor's state: false only for a
// fail-closed sensor that is down.
func (s *Sensor) PassVerdict() bool {
	return !(s.state == SensorFailed && s.failureMode == FailClosed)
}

// Offer hands the sensor one packet.
func (s *Sensor) Offer(p *packet.Packet) {
	now := s.sim.Now()
	if s.state == SensorFailed {
		// A failed sensor inspects nothing. Fail-open silently misses;
		// the drop counter records the blindness either way.
		s.Dropped++
		s.cDropped.Inc()
		return
	}
	if s.queueDepth >= s.queueLimit {
		s.Dropped++
		s.cDropped.Inc()
		s.noteDrop(now)
		return
	}
	cost := s.engine.CostPerPacket(p)
	if s.SpeedFactor > 0 && s.SpeedFactor != 1 {
		cost = time.Duration(float64(cost) / s.SpeedFactor)
	}
	if s.slowScale > 0 && s.slowScale < 1 {
		cost = time.Duration(float64(cost) / s.slowScale)
	}
	start := now
	if s.busyUntil > start {
		start = s.busyUntil
	}
	s.busyUntil = start + cost
	s.queueDepth++
	s.gQueue.Set(int64(s.queueDepth))
	s.BusyTime += cost
	s.hScanSim.Observe(int64(cost))
	// One event per packet at exactly the packet's completion instant —
	// same times, same scheduling order as the historical per-packet
	// closure, so the simulation's (time, seq) event order is untouched.
	// The ring supplies the packet at fire time.
	s.pending.push(p)
	s.sim.MustSchedule(s.busyUntil-now, s.inspectFn)
}

// inspectNext completes the head pending packet: the sensor's per-packet
// completion event. When the engine supports prescanning and the head
// has not been covered by a batch scan yet, the whole pending queue is
// scanned as one interleaved batch first — the "scan cycle drains its
// queue as a batch" hot path. Everything observable (counters, failure
// handling, alert content and timing) is identical to per-packet
// inspection: prescanning is pure, and the stateful inspection phase
// still runs here, per packet, at this packet's own completion time.
func (s *Sensor) inspectNext() {
	ent := s.pending.at(0)
	s.queueDepth--
	s.gQueue.Set(int64(s.queueDepth))
	if s.state == SensorFailed {
		// A dead sensor inspects nothing; any memoized prescan result
		// for this entry is simply discarded (the scan was pure).
		s.pending.pop()
		return
	}
	s.Processed++
	s.cProcessed.Inc()
	// Wall-clock scan timing: real harness cost of the detection
	// engine, as opposed to the modeled sim cost above. Reading the
	// wall clock never touches the simulation, so determinism holds.
	// A batch's whole scan cost lands on the packet that triggered it.
	var t0 time.Time
	if s.hScanWall != nil {
		t0 = time.Now()
	}
	if s.prescan != nil && !ent.scanned {
		s.prescanPending()
	}
	var alerts []detect.Alert
	if ent.scanned {
		alerts = s.prescan.InspectPrescanned(ent.p, s.sim.Now(), int(ent.idx))
	} else {
		alerts = s.engine.Inspect(ent.p, s.sim.Now())
	}
	s.pending.pop()
	if s.hScanWall != nil {
		s.hScanWall.Observe(int64(time.Since(t0)))
	}
	if len(alerts) > 0 && s.deliver != nil {
		s.deliver(alerts)
	}
}

// prescanPending batch-scans every pending payload (head included) in
// one interleaved automaton pass and memoizes per-entry match sets.
// Invariant: a prescan only ever happens when no previously-scanned
// entries remain (FIFO consumption), so overwriting the engine's batch
// memo is safe.
func (s *Sensor) prescanPending() {
	s.scratch = s.scratch[:0]
	for i := 0; i < s.pending.n; i++ {
		s.scratch = append(s.scratch, s.pending.at(i).p.Payload)
	}
	ok := s.prescan.PrescanBatch(s.scratch)
	for i := range s.scratch {
		s.scratch[i] = nil
	}
	if !ok {
		return
	}
	for i := 0; i < s.pending.n; i++ {
		e := s.pending.at(i)
		e.scanned = true
		e.idx = int32(i)
	}
	s.BatchScans++
	s.BatchPackets += uint64(s.pending.n)
	s.cBatchScans.Inc()
	s.cBatchPkts.Add(uint64(s.pending.n))
}

// noteDrop tracks the drop rate and triggers lethal-dose failure.
func (s *Sensor) noteDrop(now simtime.Time) {
	if s.lethalRate <= 0 {
		return
	}
	if now-s.dropWindowStart > time.Second {
		s.dropWindowStart = now
		s.dropsThisWindow = 0
	}
	s.dropsThisWindow++
	if s.dropsThisWindow >= s.lethalRate {
		s.fail(now)
	}
}

// fail transitions the sensor to the failed state and arms restart.
func (s *Sensor) fail(now simtime.Time) {
	if s.state == SensorFailed {
		return
	}
	s.state = SensorFailed
	s.Failures++
	s.failedAt = now
	if s.onStateChange != nil {
		s.onStateChange(false)
	}
	if s.restartAfter > 0 {
		s.sim.MustSchedule(s.restartAfter, s.restart)
	}
}

// restart revives a failed sensor ("fatal errors cause restart of
// application(s) or service(s)" — the metric's high-score anchor). A
// hung sensor ignores its restart timer: a wedged process does not come
// back on its own.
func (s *Sensor) restart() {
	if s.state != SensorFailed || s.hung {
		return
	}
	s.FailedDuration += s.sim.Now() - s.failedAt
	s.state = SensorUp
	s.dropsThisWindow = 0
	s.dropWindowStart = s.sim.Now()
	if s.onStateChange != nil {
		s.onStateChange(true)
	}
}

// InjectCrash forces the sensor into the failed state, exactly as if the
// lethal dose had been reached: the product's own RestartAfter (if any)
// governs recovery, and failure-mode semantics apply unchanged. The
// sensor cannot tell an injected crash from an organic one — the fault
// harness's transparency contract.
func (s *Sensor) InjectCrash() { s.fail(s.sim.Now()) }

// InjectHang wedges the sensor: failed, and deaf to its own restart
// timer until InjectRecover. Models a process that is alive but stuck,
// which no watchdog-restart policy can clear.
func (s *Sensor) InjectHang() {
	s.hung = true
	s.fail(s.sim.Now())
}

// InjectRecover clears a hang (or any failure) and revives the sensor
// immediately — the injector's "operator intervention" at fault end.
func (s *Sensor) InjectRecover() {
	s.hung = false
	s.restart()
}

// InjectSlowdown derates processing speed by scale in (0,1) — a sensor
// limping through a slow restart or resource exhaustion. 0 or >=1
// restores nominal speed.
func (s *Sensor) InjectSlowdown(scale float64) {
	if scale <= 0 || scale >= 1 {
		s.slowScale = 0
		return
	}
	s.slowScale = scale
}

// Downtime returns accumulated failed time, including an ongoing outage.
func (s *Sensor) Downtime() time.Duration {
	d := s.FailedDuration
	if s.state == SensorFailed {
		d += s.sim.Now() - s.failedAt
	}
	return d
}
