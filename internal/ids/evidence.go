package ids

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/detect"
)

// maxSampleAlerts bounds the per-incident alert evidence retained.
const maxSampleAlerts = 16

// EvidenceBundle is the forensic package for one incident — the Evidence
// Collection performance capability: the incident record, a sample of
// the contributing alerts, and (when session recording is enabled and
// captured the flow) the recorded traffic.
type EvidenceBundle struct {
	Incident  *ReportedIncident
	Alerts    []detect.Alert
	Recording *SessionRecording
}

// Evidence assembles the bundle for a reported incident.
func (s *IDS) Evidence(inc *ReportedIncident) *EvidenceBundle {
	b := &EvidenceBundle{Incident: inc, Alerts: inc.sampleAlerts}
	if s.recorder != nil {
		for _, a := range inc.sampleAlerts {
			if rec := s.Playback(a.Flow); rec != nil {
				b.Recording = rec
				break
			}
		}
	}
	return b
}

// WriteJSON serializes the bundle for hand-off (chain-of-custody export).
func (b *EvidenceBundle) WriteJSON(w io.Writer) error {
	type alertJSON struct {
		AtNs      int64   `json:"at_ns"`
		Technique string  `json:"technique"`
		Severity  float64 `json:"severity"`
		Attacker  string  `json:"attacker"`
		Victim    string  `json:"victim"`
		Reason    string  `json:"reason"`
		Engine    string  `json:"engine"`
	}
	type packetJSON struct {
		Flow    string `json:"flow"`
		Len     int    `json:"len"`
		Flags   string `json:"flags,omitempty"`
		Payload []byte `json:"payload,omitempty"`
	}
	out := struct {
		Technique  string       `json:"technique"`
		Attacker   string       `json:"attacker"`
		Victim     string       `json:"victim"`
		Severity   float64      `json:"severity"`
		FirstNs    int64        `json:"first_alert_ns"`
		LastNs     int64        `json:"last_alert_ns"`
		AlertCount int          `json:"alert_count"`
		Engines    []string     `json:"engines"`
		Alerts     []alertJSON  `json:"alerts"`
		Packets    []packetJSON `json:"recorded_packets,omitempty"`
		Truncated  bool         `json:"recording_truncated,omitempty"`
	}{
		Technique: b.Incident.Technique,
		Attacker:  b.Incident.Attacker.String(),
		Victim:    b.Incident.Victim.String(),
		Severity:  b.Incident.Severity,
		FirstNs:   int64(b.Incident.FirstAlert), LastNs: int64(b.Incident.LastAlert),
		AlertCount: b.Incident.AlertCount,
		Engines:    b.Incident.Engines,
	}
	for _, a := range b.Alerts {
		out.Alerts = append(out.Alerts, alertJSON{
			AtNs: int64(a.At), Technique: a.Technique, Severity: a.Severity,
			Attacker: a.Attacker.String(), Victim: a.Victim.String(),
			Reason: a.Reason, Engine: a.Engine,
		})
	}
	if b.Recording != nil {
		for _, p := range b.Recording.Packets {
			pj := packetJSON{Flow: p.Key().String(), Len: p.WireLen(), Payload: p.Payload}
			if p.Proto != 0 {
				pj.Flags = p.Flags.String()
			}
			out.Packets = append(out.Packets, pj)
		}
		out.Truncated = b.Recording.Truncated
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Summary renders a one-paragraph evidence synopsis for the report.
func (b *EvidenceBundle) Summary() string {
	rec := "no session recording"
	if b.Recording != nil {
		rec = fmt.Sprintf("%d packets (%d bytes) recorded", len(b.Recording.Packets), b.Recording.Bytes)
	}
	window := time.Duration(b.Incident.LastAlert - b.Incident.FirstAlert)
	return fmt.Sprintf("%s %v->%v: %d alerts over %v from %v; %s",
		b.Incident.Technique, b.Incident.Attacker, b.Incident.Victim,
		b.Incident.AlertCount, window, b.Incident.Engines, rec)
}
