package ids

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func recordingIDS(t *testing.T, budget int) (*simtime.Sim, *IDS) {
	t.Helper()
	sim := simtime.New(1)
	s, err := New(sim, Config{
		Name: "rec", Engine: stubFactory,
		RecordSessions: true, RecordBudgetBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sim, s
}

func TestSessionRecordingCapturesAlertingFlow(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	// First packet alerts (contains 'X'), arming the flow.
	s.Ingest(attackPkt(1))
	sim.Run()
	// Subsequent packets of the same flow are captured.
	follow := attackPkt(1)
	follow.Payload = []byte("follow-up data")
	s.Ingest(follow)
	reverse := attackPkt(1)
	reverse.Src, reverse.Dst = reverse.Dst, reverse.Src
	reverse.SrcPort, reverse.DstPort = reverse.DstPort, reverse.SrcPort
	reverse.Payload = []byte("response")
	s.Ingest(reverse)
	sim.Run()

	recs := s.Recordings()
	if len(recs) != 1 {
		t.Fatalf("%d recordings, want 1", len(recs))
	}
	// Both directions captured (canonical flow).
	if len(recs[0].Packets) != 2 {
		t.Fatalf("captured %d packets, want 2 (both directions post-alert)", len(recs[0].Packets))
	}
	// Playback by either direction's key.
	if s.Playback(follow.Key()) == nil || s.Playback(reverse.Key()) == nil {
		t.Fatal("playback lookup failed")
	}
}

func TestSessionRecordingIgnoresQuietFlows(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	s.Ingest(benignPkt(1))
	sim.Run()
	s.Ingest(benignPkt(1))
	sim.Run()
	if got := len(s.Recordings()); got != 0 {
		t.Fatalf("%d recordings of non-alerting traffic", got)
	}
}

func TestSessionRecordingBudget(t *testing.T) {
	sim, s := recordingIDS(t, 200)
	s.Ingest(attackPkt(1))
	sim.Run()
	for i := 0; i < 20; i++ {
		p := attackPkt(1)
		p.Payload = make([]byte, 100)
		s.Ingest(p)
	}
	sim.Run()
	rec := s.Recordings()[0]
	if !rec.Truncated {
		t.Fatal("budget not enforced")
	}
	if rec.Bytes > 200 {
		t.Fatalf("recorded %d bytes over budget", rec.Bytes)
	}
}

func TestRecordingDisabledByDefault(t *testing.T) {
	sim := simtime.New(1)
	s, err := New(sim, Config{Name: "plain", Engine: stubFactory})
	if err != nil {
		t.Fatal(err)
	}
	s.Ingest(attackPkt(1))
	sim.Run()
	if s.Recordings() != nil || s.Playback(attackPkt(1).Key()) != nil {
		t.Fatal("recording active without RecordSessions")
	}
}

func TestTrendBucketsIncidents(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "trend", Engine: stubFactory, CorrelationWindow: time.Second})
	// Two attacks in bucket 0, one in bucket 2 (10s buckets), distinct
	// attackers so they are distinct incidents.
	sim.MustSchedule(1*time.Second, func() { s.Ingest(attackPkt(1)) })
	sim.MustSchedule(2*time.Second, func() { s.Ingest(attackPkt(2)) })
	sim.MustSchedule(25*time.Second, func() { s.Ingest(attackPkt(3)) })
	sim.Run()
	trend := s.Monitor().Trend(10 * time.Second)
	if len(trend) != 3 {
		t.Fatalf("%d buckets, want 3 (including the empty middle)", len(trend))
	}
	if trend[0].Counts["stub-attack"] != 2 {
		t.Fatalf("bucket 0 = %v", trend[0].Counts)
	}
	if len(trend[1].Counts) != 0 {
		t.Fatalf("bucket 1 should be empty: %v", trend[1].Counts)
	}
	if trend[2].Counts["stub-attack"] != 1 {
		t.Fatalf("bucket 2 = %v", trend[2].Counts)
	}
}

func TestTrendEdgeCases(t *testing.T) {
	sim := simtime.New(1)
	s, _ := New(sim, Config{Name: "trend", Engine: stubFactory})
	if got := s.Monitor().Trend(time.Second); got != nil {
		t.Fatal("trend of empty monitor should be nil")
	}
	s.Ingest(attackPkt(1))
	sim.Run()
	if got := s.Monitor().Trend(0); got != nil {
		t.Fatal("zero bucket should be nil")
	}
}

func TestSensorFailureSelfReported(t *testing.T) {
	sim := simtime.New(1)
	slow := func() detect.Engine { return &stubEngine{sens: 0.5, cost: 10 * time.Millisecond} }
	s, err := New(sim, Config{
		Name: "watch", Engine: slow, SensorQueue: 4,
		LethalDropsPerSec: 20, FailureMode: FailCrash, RestartAfter: 2 * time.Second,
		HasConsole: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*time.Millisecond, func() { s.Ingest(benignPkt(1)) })
	}
	sim.Run()
	events := s.SelfEvents()
	if len(events) < 2 {
		t.Fatalf("%d self events, want failure + recovery", len(events))
	}
	if events[0].Recovered || !events[1].Recovered {
		t.Fatalf("event order wrong: %+v", events)
	}
	// The failure was reported through the monitor (watchdog via console).
	found := false
	for _, inc := range s.Monitor().Incidents {
		if inc.Technique == "ids-sensor-failure" {
			found = true
		}
	}
	if !found {
		t.Fatal("sensor failure not reported to the monitor")
	}
}

func TestSensorFailureNotReportedWithoutConsole(t *testing.T) {
	sim := simtime.New(1)
	slow := func() detect.Engine { return &stubEngine{sens: 0.5, cost: 10 * time.Millisecond} }
	s, err := New(sim, Config{
		Name: "silent", Engine: slow, SensorQueue: 4,
		LethalDropsPerSec: 20, FailureMode: FailCrash,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*time.Millisecond, func() { s.Ingest(benignPkt(1)) })
	}
	sim.Run()
	if len(s.SelfEvents()) == 0 {
		t.Fatal("self events not recorded")
	}
	for _, inc := range s.Monitor().Incidents {
		if inc.Technique == "ids-sensor-failure" {
			t.Fatal("console-less IDS self-reported through the monitor")
		}
	}
}

func TestRecordingClonesPackets(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	s.Ingest(attackPkt(1))
	sim.Run()
	p := attackPkt(1)
	p.Payload = []byte("original")
	s.Ingest(p)
	sim.Run()
	p.Payload[0] = 'X'
	rec := s.Recordings()[0]
	if string(rec.Packets[0].Payload) != "original" {
		t.Fatal("recording shares storage with live packet")
	}
}

func TestExportRecordingsWritesStreamTrace(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	// Two alerting flows from distinct attackers, captured at distinct
	// virtual times so the export has a real timeline.
	sim.MustSchedule(time.Second, func() {
		s.Ingest(attackPkt(1))
	})
	sim.MustSchedule(2*time.Second, func() {
		p := attackPkt(1)
		p.Payload = []byte("follow-up")
		p.Sent = sim.Now()
		s.Ingest(p)
	})
	sim.MustSchedule(3*time.Second, func() {
		s.Ingest(attackPkt(2))
	})
	sim.Run()
	if len(s.Recordings()) != 2 {
		t.Fatalf("%d recordings, want 2", len(s.Recordings()))
	}

	var buf bytes.Buffer
	if err := s.ExportRecordings(&buf, "forensics"); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rd.Profile() != "forensics" {
		t.Fatalf("profile %q", rd.Profile())
	}
	var total int
	for _, rec := range s.Recordings() {
		total += len(rec.Packets)
	}
	st, ok := rd.Stats()
	if !ok || st.Packets != uint64(total) {
		t.Fatalf("exported %d packets, recordings hold %d", st.Packets, total)
	}
	var lastSent time.Duration
	for {
		c, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range c.Records {
			if r.Pk.Sent < lastSent {
				t.Fatal("export timeline out of order")
			}
			lastSent = r.Pk.Sent
		}
		c.Release()
	}
}

func TestExportRecordingsFileAtomic(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	sim.MustSchedule(time.Second, func() { s.Ingest(attackPkt(1)) })
	sim.Run()
	if len(s.Recordings()) == 0 {
		t.Fatal("no recordings to export")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.idt2")
	if err := s.ExportRecordingsFile(path, "forensics"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rd, err := trace.NewReader(f)
	if err != nil {
		t.Fatalf("exported file is not a readable trace: %v", err)
	}
	if rd.Profile() != "forensics" {
		t.Fatalf("profile %q", rd.Profile())
	}
	// No temp litter: the only entry in dir is the committed file.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name() != "rec.idt2" {
		t.Fatalf("directory not clean after export: %v", ents)
	}
}
