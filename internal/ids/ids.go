// Package ids implements the paper's generalized network-IDS architecture
// (Section 2.2, Figures 1 and 2): the five sequential subprocesses —
// load balancing, sensing, analyzing, monitoring, managing — with their
// relational cardinalities (load balancer 1c:M sensors, sensors M:M
// analyzers, analyzers M:1 monitor, monitor 1:1c console, console 1c:M
// components). Simulated commercial products in internal/products are
// assembled from these parts with different engines, capacities, and
// failure behaviours.
package ids

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// BalancerKind selects the load-balancing subprocess behaviour, mirroring
// the Scalable Load-balancing metric's anchors: none (low), static (avg),
// intelligent dynamic (high).
type BalancerKind int

// Balancer kinds.
const (
	// BalancerNone sends all traffic to sensor 0 (centralized collection).
	BalancerNone BalancerKind = iota
	// BalancerStatic spreads traffic by source subnet, the "static
	// methods such as placement" of the paper; individual sensors "may
	// overload or starve".
	BalancerStatic
	// BalancerFlowHash spreads flows by canonical 5-tuple hash, keeping
	// TCP sessions on one sensor.
	BalancerFlowHash
	// BalancerDynamic assigns new flows to the least-loaded sensor and
	// pins them there (session-aware, "intelligent, dynamic").
	BalancerDynamic
)

// String names the kind.
func (k BalancerKind) String() string {
	switch k {
	case BalancerNone:
		return "none"
	case BalancerStatic:
		return "static"
	case BalancerFlowHash:
		return "flow-hash"
	case BalancerDynamic:
		return "dynamic"
	default:
		return fmt.Sprintf("balancer(%d)", int(k))
	}
}

// FailureMode is what a sensor does when driven past its lethal dose —
// the behaviour the Error Reporting and Recovery metric scores.
type FailureMode int

// Failure modes.
const (
	// FailOpen stops inspecting; traffic is unaffected (passive sensor
	// goes blind, in-line sensor forwards uninspected).
	FailOpen FailureMode = iota
	// FailClosed blocks traffic through an in-line deployment while down.
	FailClosed
	// FailCrash halts the sensor entirely until restarted.
	FailCrash
)

// String names the mode.
func (m FailureMode) String() string {
	switch m {
	case FailOpen:
		return "fail-open"
	case FailClosed:
		return "fail-closed"
	case FailCrash:
		return "fail-crash"
	default:
		return fmt.Sprintf("failure(%d)", int(m))
	}
}

// Config assembles an IDS instance.
type Config struct {
	// Name identifies the deployment (usually the product name).
	Name string
	// Sensors is the sensing fan-out (>=1).
	Sensors int
	// Analyzers is the analysis fan-in pool (>=1; sensors map round-robin).
	Analyzers int
	// Balancer selects the load-balancing subprocess. With BalancerNone
	// and >1 sensors, construction fails: the paper's architecture gives
	// every sensor exactly one balancer (1c:M) or static placement.
	Balancer BalancerKind
	// BalancerCost is the per-packet load-balancer latency (0 = free).
	BalancerCost time.Duration
	// Engine builds the detection engine for one sensor.
	Engine func() detect.Engine
	// SensorQueue is each sensor's pending-packet limit.
	SensorQueue int
	// SensorSpeedFactor scales sensor processing speed relative to the
	// engine's nominal per-packet cost (2 = twice as fast, 0.5 = half;
	// default 1). It models implementation maturity: optimized
	// commercial sensors versus research prototypes.
	SensorSpeedFactor float64
	// LethalDropsPerSec is the sustained per-sensor drop rate that kills
	// the sensor (0 = indestructible).
	LethalDropsPerSec int
	// FailureMode is the sensor's behaviour after death.
	FailureMode FailureMode
	// RestartAfter revives failed sensors after this delay (0 = never).
	RestartAfter time.Duration
	// SeparateAnalysis models sensing and analysis on distinct machines:
	// alert delivery pays AnalysisLatency and per-alert network bytes
	// (Section 2.2: "separation adds network overhead").
	SeparateAnalysis bool
	// AnalysisLatency is the sensor->analyzer delivery delay when
	// separated.
	AnalysisLatency time.Duration
	// CorrelationWindow groups alerts for the same (attacker, victim,
	// technique) into one reported incident.
	CorrelationWindow time.Duration
	// NotifyThreshold is the monitor's minimum severity for operator
	// notification.
	NotifyThreshold float64
	// HasConsole attaches the optional management console (1:1c).
	HasConsole bool
	// StorageBytesPerAlert models analyzer historical-data retention.
	StorageBytesPerAlert int
	// RecordSessions captures the traffic of alerting flows for later
	// playback (Session Recording and Playback capability).
	RecordSessions bool
	// RecordBudgetBytes bounds each recording (default 64 KiB).
	RecordBudgetBytes int
}

// applyDefaults fills zero values.
func (c *Config) applyDefaults() {
	if c.Sensors == 0 {
		c.Sensors = 1
	}
	if c.Analyzers == 0 {
		c.Analyzers = 1
	}
	if c.SensorQueue == 0 {
		c.SensorQueue = 2048
	}
	if c.CorrelationWindow == 0 {
		c.CorrelationWindow = 5 * time.Second
	}
	if c.NotifyThreshold == 0 {
		c.NotifyThreshold = 0.5
	}
	if c.AnalysisLatency == 0 && c.SeparateAnalysis {
		c.AnalysisLatency = 2 * time.Millisecond
	}
	if c.StorageBytesPerAlert == 0 {
		c.StorageBytesPerAlert = 512
	}
	if c.SensorSpeedFactor == 0 {
		c.SensorSpeedFactor = 1
	}
}

// IDS is one assembled intrusion detection system.
type IDS struct {
	sim *simtime.Sim
	cfg Config

	sensors   []*Sensor
	analyzers []*Analyzer
	monitor   *Monitor
	console   *Console

	// flowPins maps canonical flows to sensors for the dynamic balancer.
	flowPins map[packet.FlowKey]int

	// recorder captures alerting flows when RecordSessions is set.
	recorder *sessionRecorder
	// pool filters which traffic is analyzed (nil = all).
	pool *DataPool
	// selfEvents records sensor failure/recovery health events.
	selfEvents []SelfEvent

	// res is the opt-in self-healing layer; nil keeps every hot path on
	// the exact pre-resilience behaviour.
	res *resilienceState
	// alertLossActive, while set by the fault injector, severs the
	// sensor→analyzer alert path.
	alertLossActive bool

	// Ingested counts packets offered to the IDS.
	Ingested uint64
	// PoolSkipped counts packets the data pool excluded from analysis.
	PoolSkipped uint64
	// AlertNetBytes accumulates modeled sensor->analyzer network overhead.
	AlertNetBytes uint64
	// AlertsLost counts alerts severed in sensor→analyzer transit by the
	// alert-loss fault (accounted, never silently dropped).
	AlertsLost uint64

	// Telemetry instruments; nil (free no-ops) unless Instrument is called.
	cIngested, cPoolSkipped, cAlertsLost *obs.Counter
	obsReg                               *obs.Registry
}

// Instrument wires telemetry through every subprocess of the IDS under
// the "ids." namespace: ingest and pool counters, per-sensor fan-out and
// scan timing, per-analyzer alert counts, and monitor incident flow.
// Idempotent; a nil registry leaves the IDS uninstrumented.
func (s *IDS) Instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.obsReg = reg
	s.cIngested = reg.Counter("ids.ingested")
	s.cPoolSkipped = reg.Counter("ids.pool_skipped")
	s.cAlertsLost = reg.Counter("ids.alerts_lost")
	for i, sn := range s.sensors {
		sn.instrument(reg, fmt.Sprintf("ids.sensor.s%d.", i))
		sn.cPicked = reg.Counter(fmt.Sprintf("ids.balancer.fanout.s%d", i))
	}
	// One shared counter across analyzers: the alert path's total drop
	// accounting, regardless of which analyzer's spool overflowed.
	dropped := reg.Counter("ids.analyzer.alerts_dropped")
	for _, a := range s.analyzers {
		a.cAlerts = reg.Counter(fmt.Sprintf("ids.analyzer.a%d.alerts", a.id))
		a.cDropped = dropped
	}
	s.monitor.cIncidents = reg.Counter("ids.monitor.incidents")
	s.monitor.cNotifications = reg.Counter("ids.monitor.notifications")
	s.monitor.cMgmtDropped = reg.Counter("ids.monitor.mgmt_dropped")
	s.monitor.cMgmtRetries = reg.Counter("ids.monitor.mgmt_retries")
	if s.res != nil {
		s.res.instrument(reg)
	}
}

// New assembles an IDS from cfg.
func New(sim *simtime.Sim, cfg Config) (*IDS, error) {
	cfg.applyDefaults()
	if cfg.Engine == nil {
		return nil, errors.New("ids: config needs an Engine factory")
	}
	if cfg.Sensors < 1 || cfg.Analyzers < 1 {
		return nil, fmt.Errorf("ids: sensors=%d analyzers=%d must be >= 1", cfg.Sensors, cfg.Analyzers)
	}
	if cfg.Balancer == BalancerNone && cfg.Sensors > 1 {
		return nil, fmt.Errorf("ids: %d sensors need a load balancer or static placement", cfg.Sensors)
	}
	s := &IDS{sim: sim, cfg: cfg, flowPins: make(map[packet.FlowKey]int)}
	if cfg.RecordSessions {
		s.recorder = newSessionRecorder(cfg.RecordBudgetBytes, 0)
	}
	s.monitor = NewMonitor(sim, cfg.NotifyThreshold)
	for i := 0; i < cfg.Analyzers; i++ {
		s.analyzers = append(s.analyzers, NewAnalyzer(sim, i, cfg.CorrelationWindow, cfg.StorageBytesPerAlert, s.monitor))
	}
	for i := 0; i < cfg.Sensors; i++ {
		an := s.analyzers[i%cfg.Analyzers]
		sensor := NewSensor(sim, i, cfg.Engine(), cfg.SensorQueue, cfg.FailureMode, cfg.LethalDropsPerSec, cfg.RestartAfter)
		sensor.SpeedFactor = cfg.SensorSpeedFactor
		sensor.deliver = s.deliverFunc(an)
		id := i
		sensor.onStateChange = func(recovered bool) { s.noteSensorEvent(id, recovered) }
		s.sensors = append(s.sensors, sensor)
	}
	if cfg.HasConsole {
		s.console = NewConsole(sim, s)
		s.monitor.onNotify = s.console.handleThreat
	}
	return s, nil
}

// deliverFunc routes a sensor's alerts to its analyzer, modeling the
// separation overhead when configured.
func (s *IDS) deliverFunc(an *Analyzer) func(alerts []detect.Alert) {
	return func(alerts []detect.Alert) {
		if len(alerts) == 0 {
			return
		}
		if s.recorder != nil {
			for _, a := range alerts {
				s.recorder.arm(a.Flow, s.sim.Now())
			}
		}
		if s.alertLossActive {
			// The transit path is severed: spool for redelivery when the
			// resilience layer has room, otherwise account the loss.
			if s.res == nil || !s.res.spoolBatch(an, alerts) {
				s.AlertsLost += uint64(len(alerts))
				s.cAlertsLost.Add(uint64(len(alerts)))
			}
			return
		}
		if s.cfg.SeparateAnalysis {
			s.AlertNetBytes += uint64(len(alerts) * 300)
			s.sim.MustSchedule(s.cfg.AnalysisLatency, func() {
				an.Submit(alerts)
			})
			return
		}
		an.Submit(alerts)
	}
}

// Name returns the deployment name.
func (s *IDS) Name() string { return s.cfg.Name }

// Config returns the assembled configuration (defaults applied).
func (s *IDS) Config() Config { return s.cfg }

// Monitor returns the monitoring subprocess.
func (s *IDS) Monitor() *Monitor { return s.monitor }

// Console returns the management console, or nil if not configured.
func (s *IDS) Console() *Console { return s.console }

// Sensors returns the sensing pool.
func (s *IDS) Sensors() []*Sensor { return s.sensors }

// Analyzers returns the analysis pool.
func (s *IDS) Analyzers() []*Analyzer { return s.analyzers }

// Train feeds one known-benign packet to every sensor engine's baseline
// (deployed products distribute one learned profile to all sensors).
func (s *IDS) Train(p *packet.Packet) {
	now := s.sim.Now()
	for _, sn := range s.sensors {
		sn.engine.Train(p, now)
	}
}

// pickSensor applies the load-balancing subprocess.
func (s *IDS) pickSensor(p *packet.Packet) *Sensor {
	n := len(s.sensors)
	if n == 1 {
		return s.sensors[0]
	}
	switch s.cfg.Balancer {
	case BalancerStatic:
		// Placement by source subnet: uneven by design.
		return s.sensors[int(p.Src>>8)%n]
	case BalancerFlowHash:
		return s.sensors[int(p.Key().Hash()%uint64(n))]
	case BalancerDynamic:
		k := p.Key().Canonical()
		if idx, ok := s.flowPins[k]; ok {
			return s.sensors[idx]
		}
		best := 0
		for i := 1; i < n; i++ {
			if s.sensors[i].QueueDepth() < s.sensors[best].QueueDepth() {
				best = i
			}
		}
		s.flowPins[k] = best
		return s.sensors[best]
	default:
		return s.sensors[0]
	}
}

// Ingest offers one packet to the IDS (the tap entry point). It reports
// whether an in-line deployment should forward the packet: false only
// when a fail-closed sensor is down or the console's response policy has
// blocked the source.
func (s *IDS) Ingest(p *packet.Packet) bool {
	s.Ingested++
	s.cIngested.Inc()
	if s.recorder != nil {
		s.recorder.observe(p)
	}
	if s.console != nil && s.console.Firewall.Blocked(p.Src) {
		s.console.Firewall.FilteredPackets++
		return false
	}
	if !s.pool.Selects(p) {
		s.PoolSkipped++
		s.cPoolSkipped.Inc()
		return true
	}
	picked := s.pickSensor(p)
	target := picked
	if s.res != nil {
		// Health-driven rerouting. The verdict still honours the picked
		// sensor's failure mode: a down fail-closed sensor blocks its
		// share of traffic even while analysis is rerouted — resilience
		// restores detection coverage, not the product's in-line policy.
		target = s.res.reroute(picked)
	}
	target.cPicked.Inc()
	if s.cfg.BalancerCost > 0 {
		// Balancer latency is modeled as added delay before sensing;
		// the packet itself (in-line) is not held, matching a mirroring
		// balancer. In-line hold cost is modeled by netsim.InlineDevice.
		s.sim.MustSchedule(s.cfg.BalancerCost, func() { target.Offer(p) })
		return picked.PassVerdict() && target.PassVerdict()
	}
	target.Offer(p)
	return picked.PassVerdict() && target.PassVerdict()
}

// SetAlertLoss arms (true) or clears (false) the alert-loss fault on the
// sensor→analyzer path. While armed, alert batches are spooled for
// retry (resilience on) or counted in AlertsLost (resilience off).
func (s *IDS) SetAlertLoss(active bool) { s.alertLossActive = active }

// SetSensitivity adjusts every sensor engine (centralized management).
func (s *IDS) SetSensitivity(v float64) error {
	for _, sn := range s.sensors {
		if err := sn.engine.SetSensitivity(v); err != nil {
			return err
		}
	}
	return nil
}

// Flush closes analyzer correlation windows; call when a run drains.
func (s *IDS) Flush() {
	for _, a := range s.analyzers {
		a.Flush()
	}
}

// Stats aggregates run counters across subprocesses.
type Stats struct {
	Ingested       uint64
	Processed      uint64
	SensorDropped  uint64
	SensorFailures int
	AlertsRaised   uint64
	Incidents      int
	Notifications  int
	StorageBytes   uint64
	AlertNetBytes  uint64
	// SensorBusy is total engine processing time across sensors (sim
	// time) — the denominator of the scan-throughput telemetry metric.
	SensorBusy time.Duration

	// Fault accounting: every alert that failed to traverse the pipeline
	// is in exactly one of these buckets, never silently gone.
	AlertsLost     uint64 // severed in sensor→analyzer transit
	AlertsDropped  uint64 // lost at the analyzer boundary (stall/overflow)
	SpoolDelivered uint64 // delivered late via any spool
	MgmtDropped    uint64 // console deliveries lost to a mgmt outage
	SensorDowntime time.Duration
}

// Stats snapshots the current counters.
func (s *IDS) Stats() Stats {
	var st Stats
	st.Ingested = s.Ingested
	st.AlertNetBytes = s.AlertNetBytes
	st.AlertsLost = s.AlertsLost
	st.MgmtDropped = s.monitor.MgmtDropped
	for _, sn := range s.sensors {
		st.Processed += sn.Processed
		st.SensorDropped += sn.Dropped
		st.SensorFailures += sn.Failures
		st.SensorBusy += sn.BusyTime
		st.SensorDowntime += sn.Downtime()
	}
	for _, a := range s.analyzers {
		st.AlertsRaised += a.AlertsSeen
		st.StorageBytes += a.StorageBytes
		st.AlertsDropped += a.DroppedAlerts
		st.SpoolDelivered += a.SpoolDelivered
	}
	if s.res != nil {
		st.SpoolDelivered += s.res.SpoolDelivered
	}
	st.Incidents = len(s.monitor.Incidents)
	st.Notifications = len(s.monitor.Notifications)
	return st
}

// Cardinality reports the subprocess fan-out/fan-in so tests can verify
// the Figure-2 relationships.
type Cardinality struct {
	Balancers       int // 0 or 1 (1c)
	Sensors         int
	Analyzers       int
	Monitors        int // always 1
	Consoles        int // 0 or 1 (1c)
	SensorsPerLB    int
	SensorToAnalyze map[int]int // sensor index -> analyzer index
}

// Cardinality computes the current wiring.
func (s *IDS) Cardinality() Cardinality {
	c := Cardinality{
		Sensors:         len(s.sensors),
		Analyzers:       len(s.analyzers),
		Monitors:        1,
		SensorToAnalyze: make(map[int]int),
	}
	if s.cfg.Balancer != BalancerNone && s.cfg.Balancer != BalancerStatic {
		c.Balancers = 1
		c.SensorsPerLB = len(s.sensors)
	}
	if s.console != nil {
		c.Consoles = 1
	}
	for i := range s.sensors {
		c.SensorToAnalyze[i] = i % len(s.analyzers)
	}
	return c
}
