package ids

import (
	"fmt"
	"strings"

	"repro/internal/packet"
)

// DataPool defines which traffic the IDS analyzes — the Data Pool
// Selectability architectural metric made operational. The paper's
// real-time note: selectability "would allow the IDS to consider only
// protocols outside those typically used within the distributed
// cluster", sparing sensor capacity for the traffic that can actually
// carry external attacks.
//
// Semantics: a packet is analyzed if it matches no Exclude rule and, when
// any Include rules exist, matches at least one of them.
type DataPool struct {
	Include []PoolRule
	Exclude []PoolRule
}

// PoolRule selects traffic by protocol, service port, and/or source and
// destination prefixes. Zero-valued fields match everything.
type PoolRule struct {
	// Name documents the rule in diagnostics.
	Name string
	// Proto restricts to one IP protocol (0 = any).
	Proto packet.Proto
	// Port restricts to a service port, matched against either endpoint
	// (0 = any).
	Port uint16
	// SrcPrefix/SrcBits restrict the source address (SrcBits 0 = any).
	SrcPrefix packet.Addr
	SrcBits   int
	// DstPrefix/DstBits restrict the destination address.
	DstPrefix packet.Addr
	DstBits   int
}

// matches reports whether the rule selects p.
func (r PoolRule) matches(p *packet.Packet) bool {
	if r.Proto != 0 && p.Proto != r.Proto {
		return false
	}
	if r.Port != 0 && p.SrcPort != r.Port && p.DstPort != r.Port {
		return false
	}
	if r.SrcBits > 0 {
		mask := ^packet.Addr(0) << (32 - r.SrcBits)
		if p.Src&mask != r.SrcPrefix&mask {
			return false
		}
	}
	if r.DstBits > 0 {
		mask := ^packet.Addr(0) << (32 - r.DstBits)
		if p.Dst&mask != r.DstPrefix&mask {
			return false
		}
	}
	return true
}

// Validate rejects malformed prefix widths.
func (pool *DataPool) Validate() error {
	check := func(rules []PoolRule, kind string) error {
		for _, r := range rules {
			if r.SrcBits < 0 || r.SrcBits > 32 || r.DstBits < 0 || r.DstBits > 32 {
				return fmt.Errorf("ids: %s rule %q has invalid prefix bits", kind, r.Name)
			}
		}
		return nil
	}
	if err := check(pool.Include, "include"); err != nil {
		return err
	}
	return check(pool.Exclude, "exclude")
}

// Selects reports whether the pool admits p for analysis. A nil pool
// admits everything.
func (pool *DataPool) Selects(p *packet.Packet) bool {
	if pool == nil {
		return true
	}
	for _, r := range pool.Exclude {
		if r.matches(p) {
			return false
		}
	}
	if len(pool.Include) == 0 {
		return true
	}
	for _, r := range pool.Include {
		if r.matches(p) {
			return true
		}
	}
	return false
}

// String summarizes the pool for reports.
func (pool *DataPool) String() string {
	if pool == nil {
		return "all traffic"
	}
	var parts []string
	for _, r := range pool.Include {
		parts = append(parts, "+"+r.Name)
	}
	for _, r := range pool.Exclude {
		parts = append(parts, "-"+r.Name)
	}
	if len(parts) == 0 {
		return "all traffic"
	}
	return strings.Join(parts, " ")
}

// ClusterExclusionPool implements the paper's suggestion for real-time
// clusters: skip the cluster's own tightly-cadenced protocols (the
// inter-node RPC service and bulk replication), which dominate east-west
// volume and cannot carry the external threat.
func ClusterExclusionPool() *DataPool {
	return &DataPool{
		Exclude: []PoolRule{
			{Name: "cluster-rpc", Proto: packet.ProtoUDP, Port: 7400},
			{Name: "cluster-replication", Proto: packet.ProtoTCP, Port: 20,
				SrcPrefix: packet.IPv4(10, 1, 0, 0), SrcBits: 16,
				DstPrefix: packet.IPv4(10, 1, 0, 0), DstBits: 16},
		},
	}
}

// SetDataPool installs (or clears, with nil) the analysis pool at
// runtime — one of the central-management operations a console performs.
func (s *IDS) SetDataPool(pool *DataPool) error {
	if pool != nil {
		if err := pool.Validate(); err != nil {
			return err
		}
	}
	s.pool = pool
	return nil
}

// DataPool returns the active pool (nil = all traffic).
func (s *IDS) DataPool() *DataPool { return s.pool }
