package ids

import (
	"reflect"
	"testing"

	"repro/internal/detect"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// scalarOnly hides an engine's Prescanning methods behind a plain Engine
// interface, forcing the sensor onto the historical per-packet scan path.
type scalarOnly struct{ detect.Engine }

// batchProbePkts is a burst on one flow (so the flow-hash balancer queues
// it all on one sensor) mixing benign payloads with content-rule hits.
func batchProbePkts() []*packet.Packet {
	payloads := []string{
		"GET /catalog/items HTTP/1.0 status nominal",
		"GET /cgi-bin/phf?Qalias=x HTTP/1.0",
		"track update bearing range doppler contact",
		"cat /etc/passwd then > /.rhosts",
		"status report nominal",
		"GET /default.ida?NNNN HTTP/1.0",
		"plain benign chatter with no rule content",
		"Login incorrect Login incorrect Login incorrect",
	}
	pkts := make([]*packet.Packet, 0, len(payloads))
	for i, pl := range payloads {
		pkts = append(pkts, &packet.Packet{
			Seq: uint64(i + 1),
			Src: packet.IPv4(203, 0, 1, 9), Dst: packet.IPv4(10, 1, 1, 1),
			SrcPort: 31000, DstPort: 80, Proto: packet.ProtoTCP,
			Flags: packet.ACK | packet.PSH, TTL: 64,
			Payload: []byte(pl),
		})
	}
	return pkts
}

// TestSensorBatchedScanMatchesScalarSensor runs the same burst through
// two identically-configured single-sensor pipelines — one whose engine
// exposes batched prescanning, one forced scalar — and requires
// byte-identical observable output (stats, incidents, notifications)
// while proving the batched sensor actually formed multi-packet scan
// cycles under queue depth.
func TestSensorBatchedScanMatchesScalarSensor(t *testing.T) {
	run := func(factory func() detect.Engine) (*IDS, *simtime.Sim) {
		sim := simtime.New(1)
		s, err := New(sim, Config{Name: "batch-probe", Engine: factory, SensorQueue: 64})
		if err != nil {
			t.Fatal(err)
		}
		// Ingest the whole burst at one instant: the sensor's busy time
		// queues the tail behind the head, so the first completion event
		// sees a deep queue — the batch-forming condition.
		for _, p := range batchProbePkts() {
			s.Ingest(p)
		}
		sim.Run()
		return s, sim
	}

	batched, _ := run(func() detect.Engine { return detect.NewStandardSignatureEngine() })
	scalar, _ := run(func() detect.Engine { return scalarOnly{detect.NewStandardSignatureEngine()} })

	bs, ss := batched.Stats(), scalar.Stats()
	if !reflect.DeepEqual(bs, ss) {
		t.Fatalf("stats diverged:\nbatched %+v\nscalar  %+v", bs, ss)
	}
	if !reflect.DeepEqual(batched.Monitor().Incidents, scalar.Monitor().Incidents) {
		t.Fatalf("incidents diverged:\nbatched %+v\nscalar  %+v",
			batched.Monitor().Incidents, scalar.Monitor().Incidents)
	}
	if bs.AlertsRaised == 0 {
		t.Fatal("burst raised no alerts; equivalence check is vacuous")
	}

	var scans, pkts uint64
	for _, sn := range batched.Sensors() {
		scans += sn.BatchScans
		pkts += sn.BatchPackets
	}
	if scans == 0 {
		t.Fatal("batched sensor never formed a batch under queue depth")
	}
	if pkts <= scans {
		t.Fatalf("batches never covered more than one packet (scans=%d pkts=%d)", scans, pkts)
	}
	for _, sn := range scalar.Sensors() {
		if sn.BatchScans != 0 {
			t.Fatal("scalar-only sensor reported batch scans")
		}
	}
}
