package ids

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// ReportedIncident is the analyzer's correlated view of one threat: all
// alerts for the same (attacker, victim, technique) within the
// correlation window, reported to the monitor on first alert (timeliness
// is measured against this report time).
type ReportedIncident struct {
	// Key fields.
	Attacker, Victim packet.Addr
	Technique        string
	// Severity is the maximum alert severity seen.
	Severity float64
	// FirstAlert/LastAlert bound the alert activity.
	FirstAlert, LastAlert time.Duration
	// ReportedAt is when the monitor learned of the incident.
	ReportedAt time.Duration
	// AlertCount is how many alerts were folded in.
	AlertCount int
	// Engines lists contributing engine names.
	Engines []string
	// sampleAlerts retains the first alerts for evidence (capped).
	sampleAlerts []detect.Alert
}

// String renders a one-line summary.
func (r *ReportedIncident) String() string {
	return fmt.Sprintf("%s %v->%v sev=%.2f alerts=%d reported=%v",
		r.Technique, r.Attacker, r.Victim, r.Severity, r.AlertCount, r.ReportedAt)
}

// Analyzer is the analysis subprocess: it performs first-order severity
// assessment and second-order correlation (scope/frequency) by folding
// alert streams into incidents, and it accounts for the historical data
// storage the Data Storage metric measures.
type Analyzer struct {
	sim    *simtime.Sim
	id     int
	window time.Duration

	open map[string]*ReportedIncident

	monitor *Monitor
	// storagePerAlert models retained context bytes per alert.
	storagePerAlert int

	// AlertsSeen counts all alerts submitted.
	AlertsSeen uint64
	// StorageBytes models accumulated historical data.
	StorageBytes uint64

	cAlerts *obs.Counter
}

// NewAnalyzer builds one analyzer reporting to monitor.
func NewAnalyzer(sim *simtime.Sim, id int, window time.Duration, storagePerAlert int, monitor *Monitor) *Analyzer {
	return &Analyzer{
		sim: sim, id: id, window: window,
		open:            make(map[string]*ReportedIncident),
		monitor:         monitor,
		storagePerAlert: storagePerAlert,
	}
}

// ID returns the analyzer index.
func (a *Analyzer) ID() int { return a.id }

func incidentKey(al detect.Alert) string {
	return fmt.Sprintf("%d/%d/%s", al.Attacker, al.Victim, al.Technique)
}

// Submit folds a batch of alerts into open incidents, creating and
// reporting new incidents as needed.
func (a *Analyzer) Submit(alerts []detect.Alert) {
	now := a.sim.Now()
	for _, al := range alerts {
		a.AlertsSeen++
		a.cAlerts.Inc()
		a.StorageBytes += uint64(a.storagePerAlert)
		k := incidentKey(al)
		inc, ok := a.open[k]
		if ok && now-inc.LastAlert > a.window {
			// Stale: close it out and start fresh.
			delete(a.open, k)
			ok = false
		}
		if !ok {
			inc = &ReportedIncident{
				Attacker: al.Attacker, Victim: al.Victim, Technique: al.Technique,
				Severity: al.Severity, FirstAlert: al.At, LastAlert: al.At,
				ReportedAt: now, AlertCount: 1, Engines: []string{al.Engine},
				sampleAlerts: []detect.Alert{al},
			}
			a.open[k] = inc
			a.monitor.Report(inc)
			continue
		}
		inc.AlertCount++
		if len(inc.sampleAlerts) < maxSampleAlerts {
			inc.sampleAlerts = append(inc.sampleAlerts, al)
		}
		if al.Severity > inc.Severity {
			inc.Severity = al.Severity
			// Escalation may cross the notification threshold.
			a.monitor.Escalate(inc)
		}
		if al.At > inc.LastAlert {
			inc.LastAlert = al.At
		}
		found := false
		for _, e := range inc.Engines {
			if e == al.Engine {
				found = true
				break
			}
		}
		if !found {
			inc.Engines = append(inc.Engines, al.Engine)
		}
	}
}

// Flush closes every open incident (end of run).
func (a *Analyzer) Flush() {
	a.open = make(map[string]*ReportedIncident)
}

// Monitor is the monitoring subprocess: the operator's view of the
// threat. It retains every reported incident, issues notifications when
// severity crosses policy, and supports the historical querying the
// monitoring metrics describe.
type Monitor struct {
	sim *simtime.Sim
	// NotifyThreshold is the minimum severity for operator notification.
	NotifyThreshold float64

	// Incidents is every incident reported, in report order.
	Incidents []*ReportedIncident
	// Notifications records operator alerts.
	Notifications []Notification

	notified map[*ReportedIncident]bool
	// onNotify, when set (console attached), receives notified incidents
	// for automated response.
	onNotify func(inc *ReportedIncident)

	cIncidents, cNotifications *obs.Counter
}

// Notification is one operator alert.
type Notification struct {
	At       time.Duration
	Incident *ReportedIncident
}

// NewMonitor builds the monitor.
func NewMonitor(sim *simtime.Sim, threshold float64) *Monitor {
	return &Monitor{sim: sim, NotifyThreshold: threshold, notified: make(map[*ReportedIncident]bool)}
}

// Report registers a new incident and notifies if warranted.
func (m *Monitor) Report(inc *ReportedIncident) {
	m.Incidents = append(m.Incidents, inc)
	m.cIncidents.Inc()
	m.maybeNotify(inc)
}

// Escalate re-evaluates notification after a severity increase.
func (m *Monitor) Escalate(inc *ReportedIncident) { m.maybeNotify(inc) }

func (m *Monitor) maybeNotify(inc *ReportedIncident) {
	if m.notified[inc] || inc.Severity < m.NotifyThreshold {
		return
	}
	m.notified[inc] = true
	m.cNotifications.Inc()
	m.Notifications = append(m.Notifications, Notification{At: m.sim.Now(), Incident: inc})
	if m.onNotify != nil {
		m.onNotify(inc)
	}
}

// Query returns incidents overlapping [from, to], most severe first —
// the "historical querying ability" of the monitoring subprocess.
func (m *Monitor) Query(from, to time.Duration) []*ReportedIncident {
	var out []*ReportedIncident
	for _, inc := range m.Incidents {
		if inc.LastAlert >= from && inc.FirstAlert <= to {
			out = append(out, inc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].FirstAlert < out[j].FirstAlert
	})
	return out
}
