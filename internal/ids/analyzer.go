package ids

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// ReportedIncident is the analyzer's correlated view of one threat: all
// alerts for the same (attacker, victim, technique) within the
// correlation window, reported to the monitor on first alert (timeliness
// is measured against this report time).
type ReportedIncident struct {
	// Key fields.
	Attacker, Victim packet.Addr
	Technique        string
	// Severity is the maximum alert severity seen.
	Severity float64
	// FirstAlert/LastAlert bound the alert activity.
	FirstAlert, LastAlert time.Duration
	// ReportedAt is when the monitor learned of the incident.
	ReportedAt time.Duration
	// AlertCount is how many alerts were folded in.
	AlertCount int
	// Engines lists contributing engine names.
	Engines []string
	// sampleAlerts retains the first alerts for evidence (capped).
	sampleAlerts []detect.Alert
}

// String renders a one-line summary.
func (r *ReportedIncident) String() string {
	return fmt.Sprintf("%s %v->%v sev=%.2f alerts=%d reported=%v",
		r.Technique, r.Attacker, r.Victim, r.Severity, r.AlertCount, r.ReportedAt)
}

// Analyzer is the analysis subprocess: it performs first-order severity
// assessment and second-order correlation (scope/frequency) by folding
// alert streams into incidents, and it accounts for the historical data
// storage the Data Storage metric measures.
type Analyzer struct {
	sim    *simtime.Sim
	id     int
	window time.Duration

	open map[string]*ReportedIncident

	monitor *Monitor
	// storagePerAlert models retained context bytes per alert.
	storagePerAlert int

	// AlertsSeen counts all alerts submitted.
	AlertsSeen uint64
	// StorageBytes models accumulated historical data.
	StorageBytes uint64

	// Stall/spool state. While stalled the analyzer folds nothing; alerts
	// go to a bounded spool (resilience on) or are counted lost
	// (resilience off). The spool is the only buffering on the
	// analyzer→monitor path and it is always bounded: overload shows up
	// in DroppedAlerts and the ids.analyzer.alerts_dropped counter, never
	// as unbounded memory growth.
	stalled      bool
	spool        []detect.Alert
	spoolLimit   int
	retryBackoff time.Duration
	retryMax     time.Duration
	curBackoff   time.Duration
	retryArmed   bool

	// DroppedAlerts counts alerts lost at the analyzer boundary: raised
	// while stalled with no spool configured, or overflowing the bounded
	// spool.
	DroppedAlerts uint64
	// SpoolDelivered counts alerts delivered late out of the spool.
	SpoolDelivered uint64
	// SpoolPeak is the spool's high-water mark.
	SpoolPeak int

	cAlerts  *obs.Counter
	cDropped *obs.Counter // shared ids.analyzer.alerts_dropped
}

// NewAnalyzer builds one analyzer reporting to monitor.
func NewAnalyzer(sim *simtime.Sim, id int, window time.Duration, storagePerAlert int, monitor *Monitor) *Analyzer {
	return &Analyzer{
		sim: sim, id: id, window: window,
		open:            make(map[string]*ReportedIncident),
		monitor:         monitor,
		storagePerAlert: storagePerAlert,
	}
}

// ID returns the analyzer index.
func (a *Analyzer) ID() int { return a.id }

func incidentKey(al detect.Alert) string {
	return fmt.Sprintf("%d/%d/%s", al.Attacker, al.Victim, al.Technique)
}

// SetStalled pauses (true) or resumes (false) incident folding — the
// analyzer-stall fault. On resume without a retry loop configured,
// whatever survived the bounded spool delivers immediately.
func (a *Analyzer) SetStalled(stalled bool) {
	a.stalled = stalled
	if !stalled && a.retryBackoff <= 0 {
		a.drainSpool()
	}
}

// Stalled reports whether the analyzer is currently stalled.
func (a *Analyzer) Stalled() bool { return a.stalled }

// configureSpool arms the bounded stall spool and its retry/backoff
// drain loop (the resilience layer's knobs).
func (a *Analyzer) configureSpool(limit int, backoff, max time.Duration) {
	a.spoolLimit = limit
	a.retryBackoff = backoff
	a.retryMax = max
}

// deferOrDrop handles alerts submitted while stalled: bounded spooling
// when configured, explicit accounted loss otherwise.
func (a *Analyzer) deferOrDrop(alerts []detect.Alert) {
	for _, al := range alerts {
		if len(a.spool) >= a.spoolLimit {
			a.DroppedAlerts++
			a.cDropped.Inc()
			continue
		}
		a.spool = append(a.spool, al)
	}
	if len(a.spool) > a.SpoolPeak {
		a.SpoolPeak = len(a.spool)
	}
	if len(a.spool) > 0 {
		a.armRetry()
	}
}

// armRetry schedules the next spool-drain attempt, if a retry loop is
// configured and none is pending.
func (a *Analyzer) armRetry() {
	if a.retryBackoff <= 0 || a.retryArmed {
		return
	}
	a.retryArmed = true
	delay := a.curBackoff
	if delay <= 0 {
		delay = a.retryBackoff
	}
	a.sim.MustSchedule(delay, a.retryFlush)
}

// retryFlush is one drain attempt: deliver if the stall has cleared,
// otherwise back off (doubling, capped) and try again. The loop always
// terminates — it only re-arms while the stall persists, and every
// injected stall has a scheduled end.
func (a *Analyzer) retryFlush() {
	a.retryArmed = false
	if len(a.spool) == 0 {
		a.curBackoff = 0
		return
	}
	if a.stalled {
		a.curBackoff *= 2
		if a.curBackoff < a.retryBackoff {
			a.curBackoff = a.retryBackoff
		}
		if a.retryMax > 0 && a.curBackoff > a.retryMax {
			a.curBackoff = a.retryMax
		}
		a.armRetry()
		return
	}
	a.drainSpool()
}

// drainSpool folds every spooled alert, late but delivered.
func (a *Analyzer) drainSpool() {
	if len(a.spool) == 0 {
		return
	}
	batch := a.spool
	a.spool = nil
	a.curBackoff = 0
	a.SpoolDelivered += uint64(len(batch))
	a.fold(batch)
}

// Submit folds a batch of alerts into open incidents, creating and
// reporting new incidents as needed. A stalled analyzer defers to the
// bounded spool instead (or accounts the loss).
func (a *Analyzer) Submit(alerts []detect.Alert) {
	if a.stalled {
		a.deferOrDrop(alerts)
		return
	}
	a.fold(alerts)
}

// fold is the actual correlation pass.
func (a *Analyzer) fold(alerts []detect.Alert) {
	now := a.sim.Now()
	for _, al := range alerts {
		a.AlertsSeen++
		a.cAlerts.Inc()
		a.StorageBytes += uint64(a.storagePerAlert)
		k := incidentKey(al)
		inc, ok := a.open[k]
		if ok && now-inc.LastAlert > a.window {
			// Stale: close it out and start fresh.
			delete(a.open, k)
			ok = false
		}
		if !ok {
			inc = &ReportedIncident{
				Attacker: al.Attacker, Victim: al.Victim, Technique: al.Technique,
				Severity: al.Severity, FirstAlert: al.At, LastAlert: al.At,
				ReportedAt: now, AlertCount: 1, Engines: []string{al.Engine},
				sampleAlerts: []detect.Alert{al},
			}
			a.open[k] = inc
			a.monitor.Report(inc)
			continue
		}
		inc.AlertCount++
		if len(inc.sampleAlerts) < maxSampleAlerts {
			inc.sampleAlerts = append(inc.sampleAlerts, al)
		}
		if al.Severity > inc.Severity {
			inc.Severity = al.Severity
			// Escalation may cross the notification threshold.
			a.monitor.Escalate(inc)
		}
		if al.At > inc.LastAlert {
			inc.LastAlert = al.At
		}
		found := false
		for _, e := range inc.Engines {
			if e == al.Engine {
				found = true
				break
			}
		}
		if !found {
			inc.Engines = append(inc.Engines, al.Engine)
		}
	}
}

// Flush closes every open incident (end of run).
func (a *Analyzer) Flush() {
	a.open = make(map[string]*ReportedIncident)
}

// Monitor is the monitoring subprocess: the operator's view of the
// threat. It retains every reported incident, issues notifications when
// severity crosses policy, and supports the historical querying the
// monitoring metrics describe.
type Monitor struct {
	sim *simtime.Sim
	// NotifyThreshold is the minimum severity for operator notification.
	NotifyThreshold float64

	// Incidents is every incident reported, in report order.
	Incidents []*ReportedIncident
	// Notifications records operator alerts.
	Notifications []Notification

	notified map[*ReportedIncident]bool
	// onNotify, when set (console attached), receives notified incidents
	// for automated response.
	onNotify func(inc *ReportedIncident)

	// Management-channel outage state. The operator-facing Notifications
	// record is unaffected (the monitor still knows); only the
	// monitor→console control channel is severed. Spooled incidents are
	// re-driven with doubling backoff when resilience is on; otherwise
	// the console deliveries are counted lost.
	outage        bool
	mgmtSpool     []*ReportedIncident
	mgmtLimit     int
	retryBackoff  time.Duration
	retryMax      time.Duration
	curBackoff    time.Duration
	retryArmed    bool
	MgmtDropped   uint64 // console deliveries lost to the outage
	MgmtRetries   uint64 // drain attempts made while the channel was down
	MgmtDelivered uint64 // console deliveries completed late from the spool

	cIncidents, cNotifications *obs.Counter
	cMgmtDropped, cMgmtRetries *obs.Counter
}

// Notification is one operator alert.
type Notification struct {
	At       time.Duration
	Incident *ReportedIncident
}

// NewMonitor builds the monitor.
func NewMonitor(sim *simtime.Sim, threshold float64) *Monitor {
	return &Monitor{sim: sim, NotifyThreshold: threshold, notified: make(map[*ReportedIncident]bool)}
}

// Report registers a new incident and notifies if warranted.
func (m *Monitor) Report(inc *ReportedIncident) {
	m.Incidents = append(m.Incidents, inc)
	m.cIncidents.Inc()
	m.maybeNotify(inc)
}

// Escalate re-evaluates notification after a severity increase.
func (m *Monitor) Escalate(inc *ReportedIncident) { m.maybeNotify(inc) }

func (m *Monitor) maybeNotify(inc *ReportedIncident) {
	if m.notified[inc] || inc.Severity < m.NotifyThreshold {
		return
	}
	m.notified[inc] = true
	m.cNotifications.Inc()
	m.Notifications = append(m.Notifications, Notification{At: m.sim.Now(), Incident: inc})
	m.dispatchConsole(inc)
}

// SetMgmtOutage severs (true) or restores (false) the monitor→console
// management channel. On restore without a retry loop, surviving spooled
// incidents deliver immediately.
func (m *Monitor) SetMgmtOutage(out bool) {
	m.outage = out
	if !out && m.retryBackoff <= 0 {
		m.drainMgmtSpool()
	}
}

// MgmtOutage reports whether the management channel is currently down.
func (m *Monitor) MgmtOutage() bool { return m.outage }

// configureMgmtSpool arms the bounded outage spool and retry loop.
func (m *Monitor) configureMgmtSpool(limit int, backoff, max time.Duration) {
	m.mgmtLimit = limit
	m.retryBackoff = backoff
	m.retryMax = max
}

// dispatchConsole drives the console hook through the management
// channel, spooling or accounting the loss during an outage.
func (m *Monitor) dispatchConsole(inc *ReportedIncident) {
	if m.onNotify == nil {
		return
	}
	if !m.outage {
		m.onNotify(inc)
		return
	}
	if len(m.mgmtSpool) < m.mgmtLimit {
		m.mgmtSpool = append(m.mgmtSpool, inc)
		m.armMgmtRetry()
		return
	}
	m.MgmtDropped++
	m.cMgmtDropped.Inc()
}

func (m *Monitor) armMgmtRetry() {
	if m.retryBackoff <= 0 || m.retryArmed {
		return
	}
	m.retryArmed = true
	delay := m.curBackoff
	if delay <= 0 {
		delay = m.retryBackoff
	}
	m.sim.MustSchedule(delay, m.mgmtRetryFlush)
}

func (m *Monitor) mgmtRetryFlush() {
	m.retryArmed = false
	if len(m.mgmtSpool) == 0 {
		m.curBackoff = 0
		return
	}
	if m.outage {
		m.MgmtRetries++
		m.cMgmtRetries.Inc()
		m.curBackoff *= 2
		if m.curBackoff < m.retryBackoff {
			m.curBackoff = m.retryBackoff
		}
		if m.retryMax > 0 && m.curBackoff > m.retryMax {
			m.curBackoff = m.retryMax
		}
		m.armMgmtRetry()
		return
	}
	m.drainMgmtSpool()
}

func (m *Monitor) drainMgmtSpool() {
	if len(m.mgmtSpool) == 0 {
		return
	}
	batch := m.mgmtSpool
	m.mgmtSpool = nil
	m.curBackoff = 0
	for _, inc := range batch {
		m.MgmtDelivered++
		m.onNotify(inc)
	}
}

// Query returns incidents overlapping [from, to], most severe first —
// the "historical querying ability" of the monitoring subprocess.
func (m *Monitor) Query(from, to time.Duration) []*ReportedIncident {
	var out []*ReportedIncident
	for _, inc := range m.Incidents {
		if inc.LastAlert >= from && inc.FirstAlert <= to {
			out = append(out, inc)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Severity != out[j].Severity {
			return out[i].Severity > out[j].Severity
		}
		return out[i].FirstAlert < out[j].FirstAlert
	})
	return out
}
