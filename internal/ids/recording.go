package ids

import (
	"sort"
	"time"

	"repro/internal/packet"
)

// SessionRecording is the captured traffic of one alerting flow — the
// Session Recording and Playback capability of Table 3's untabled
// performance metrics. Recording starts when a flow first raises an
// alert and is bounded by a byte budget.
type SessionRecording struct {
	Flow packet.FlowKey
	// Packets in capture order (clones; safe to hold).
	Packets []*packet.Packet
	// Bytes captured so far.
	Bytes int
	// Truncated marks recordings that hit the budget.
	Truncated bool
	// Started is the virtual time recording was armed.
	Started time.Duration
}

// sessionRecorder captures packets of flows that have alerted.
type sessionRecorder struct {
	armed map[packet.FlowKey]*SessionRecording
	// budgetBytes bounds each recording.
	budgetBytes int
	// maxSessions bounds concurrent recordings.
	maxSessions int
}

func newSessionRecorder(budgetBytes, maxSessions int) *sessionRecorder {
	if budgetBytes <= 0 {
		budgetBytes = 64 << 10
	}
	if maxSessions <= 0 {
		maxSessions = 256
	}
	return &sessionRecorder{
		armed:       make(map[packet.FlowKey]*SessionRecording),
		budgetBytes: budgetBytes,
		maxSessions: maxSessions,
	}
}

// arm starts recording a flow (both directions via canonical key).
func (r *sessionRecorder) arm(flow packet.FlowKey, now time.Duration) {
	k := flow.Canonical()
	if _, ok := r.armed[k]; ok || len(r.armed) >= r.maxSessions {
		return
	}
	r.armed[k] = &SessionRecording{Flow: k, Started: now}
}

// observe captures one packet if its flow is armed.
func (r *sessionRecorder) observe(p *packet.Packet) {
	rec, ok := r.armed[p.Key().Canonical()]
	if !ok || rec.Truncated {
		return
	}
	if rec.Bytes+p.WireLen() > r.budgetBytes {
		rec.Truncated = true
		return
	}
	rec.Packets = append(rec.Packets, p.Clone())
	rec.Bytes += p.WireLen()
}

// Recordings returns all session recordings sorted by start time.
func (s *IDS) Recordings() []*SessionRecording {
	if s.recorder == nil {
		return nil
	}
	out := make([]*SessionRecording, 0, len(s.recorder.armed))
	for _, rec := range s.recorder.armed {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Started != out[j].Started {
			return out[i].Started < out[j].Started
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// Playback returns the recording for a flow (either direction), or nil.
func (s *IDS) Playback(flow packet.FlowKey) *SessionRecording {
	if s.recorder == nil {
		return nil
	}
	return s.recorder.armed[flow.Canonical()]
}

// TrendBucket aggregates incident counts per technique over one time
// bucket — the Trend Analysis capability.
type TrendBucket struct {
	Start  time.Duration
	Counts map[string]int
}

// Trend buckets the monitor's incidents by first-alert time. Empty
// buckets between active ones are included so series plot evenly.
func (m *Monitor) Trend(bucket time.Duration) []TrendBucket {
	if bucket <= 0 || len(m.Incidents) == 0 {
		return nil
	}
	var maxT time.Duration
	minT := m.Incidents[0].FirstAlert
	for _, inc := range m.Incidents {
		if inc.FirstAlert < minT {
			minT = inc.FirstAlert
		}
		if inc.FirstAlert > maxT {
			maxT = inc.FirstAlert
		}
	}
	first := minT / bucket
	last := maxT / bucket
	out := make([]TrendBucket, 0, last-first+1)
	for b := first; b <= last; b++ {
		out = append(out, TrendBucket{Start: b * bucket, Counts: make(map[string]int)})
	}
	for _, inc := range m.Incidents {
		idx := inc.FirstAlert/bucket - first
		out[idx].Counts[inc.Technique]++
	}
	return out
}

// SelfEvent records the IDS reporting on its own health (sensor failure
// or recovery) — the reporting half of the Error Reporting and Recovery
// metric.
type SelfEvent struct {
	At       time.Duration
	SensorID int
	// Recovered is false for a failure event, true for a restart.
	Recovered bool
}

// SelfEvents returns the health events recorded so far.
func (s *IDS) SelfEvents() []SelfEvent { return s.selfEvents }

// noteSensorEvent records a health event and, when a console exists
// (watchdog path), notifies the operator through the normal monitor
// channel as the metric's high anchor requires ("failure is reported
// near real time via attack notification channels").
func (s *IDS) noteSensorEvent(sensorID int, recovered bool) {
	now := s.sim.Now()
	s.selfEvents = append(s.selfEvents, SelfEvent{At: now, SensorID: sensorID, Recovered: recovered})
	if s.console == nil || recovered {
		return
	}
	inc := &ReportedIncident{
		Technique:  "ids-sensor-failure",
		Severity:   1,
		FirstAlert: now, LastAlert: now, ReportedAt: now,
		AlertCount: 1, Engines: []string{"watchdog"},
	}
	s.monitor.Report(inc)
}
