package ids

import (
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// resilientIDS builds an instrumented two-sensor IDS with the
// self-healing layer on, using a fast heartbeat and short backoff so
// tests stay in the millisecond range.
func resilientIDS(t *testing.T, r Resilience) (*simtime.Sim, *IDS, *obs.Registry) {
	t.Helper()
	sim := simtime.New(11)
	inst, err := New(sim, Config{
		Name: "res", Sensors: 2, Analyzers: 1, Balancer: BalancerStatic,
		Engine: func() detect.Engine {
			return detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
		},
		HasConsole: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	inst.Instrument(reg)
	inst.EnableResilience(r)
	return sim, inst, reg
}

func benign(src packet.Addr) *packet.Packet {
	return &packet.Packet{Src: src, Dst: packet.IPv4(10, 0, 9, 9), Payload: []byte("benign payload")}
}

func TestRerouteAwayFromDeadSensor(t *testing.T) {
	sim, inst, reg := resilientIDS(t, Resilience{HeartbeatEvery: 100 * time.Millisecond})
	// Static balancer: third-octet parity picks the sensor. Crash sensor
	// 0 before the first heartbeat classifies it.
	inst.Sensors()[0].InjectCrash()
	inst.StartHealthLoop()

	inst.Ingest(benign(packet.IPv4(10, 0, 0, 1))) // maps to dead sensor 0 -> reroute
	inst.Ingest(benign(packet.IPv4(10, 0, 1, 1))) // maps to healthy sensor 1 -> direct
	inst.StopHealthLoop()
	sim.Run()

	if got := inst.ResilienceStats().Rerouted; got != 1 {
		t.Fatalf("Rerouted = %d, want 1", got)
	}
	if got := reg.Counter("ids.balancer.rerouted").Value(); got != 1 {
		t.Fatalf("rerouted counter = %d, want 1", got)
	}
	if got := inst.Sensors()[1].Processed; got != 2 {
		t.Fatalf("healthy sensor processed %d packets, want 2 (own + rerouted)", got)
	}
	if got := inst.Sensors()[0].Processed; got != 0 {
		t.Fatalf("dead sensor processed %d packets, want 0", got)
	}
	if inst.ResilienceStats().HealthChecks == 0 {
		t.Fatal("heartbeat never ticked")
	}
}

func TestRerouteKeepsFailClosedVerdict(t *testing.T) {
	// Rerouting restores detection coverage but must not launder the
	// product's in-line policy: a dead fail-closed sensor still blocks
	// its share of traffic.
	sim := simtime.New(11)
	inst, err := New(sim, Config{
		Name: "res", Sensors: 2, Analyzers: 1, Balancer: BalancerStatic,
		Engine: func() detect.Engine {
			return detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
		},
		FailureMode: FailClosed,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst.EnableResilience(Resilience{HeartbeatEvery: 100 * time.Millisecond})
	inst.Sensors()[0].InjectCrash()
	inst.StartHealthLoop()
	if inst.Ingest(benign(packet.IPv4(10, 0, 0, 1))) {
		t.Fatal("rerouted packet passed a down fail-closed sensor")
	}
	if inst.ResilienceStats().Rerouted != 1 {
		t.Fatal("packet was not rerouted")
	}
	inst.StopHealthLoop()
	sim.Run()
}

func TestAlertLossSpooledAndRedelivered(t *testing.T) {
	sim, inst, reg := resilientIDS(t, Resilience{RetryBackoff: 100 * time.Millisecond})
	deliver := inst.deliverFunc(inst.Analyzers()[0])
	alerts := []detect.Alert{{Technique: "probe", Severity: 0.9, Engine: "sig"}}

	inst.SetAlertLoss(true)
	deliver(alerts)
	if inst.AlertsLost != 0 {
		t.Fatalf("resilient run lost %d alerts during the outage", inst.AlertsLost)
	}
	if got := inst.ResilienceStats().Spooled; got != 1 {
		t.Fatalf("Spooled = %d, want 1", got)
	}
	sim.MustSchedule(350*time.Millisecond, func() { inst.SetAlertLoss(false) })
	sim.Run()

	st := inst.ResilienceStats()
	if st.SpoolDelivered != 1 {
		t.Fatalf("SpoolDelivered = %d, want 1", st.SpoolDelivered)
	}
	// Retries at 100ms and 300ms found the fault active; the 700ms pass
	// (backoff doubled 100->200->400) delivered.
	if st.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", st.Retries)
	}
	if got := inst.Analyzers()[0].AlertsSeen; got != 1 {
		t.Fatalf("analyzer saw %d alerts after redelivery, want 1", got)
	}
	if got := reg.Counter("ids.spool.delivered").Value(); got != 1 {
		t.Fatalf("delivered counter = %d, want 1", got)
	}
	if got := inst.Stats().SpoolDelivered; got != 1 {
		t.Fatalf("Stats().SpoolDelivered = %d, want 1", got)
	}
}

func TestAlertLossWithoutResilienceAccountsLoss(t *testing.T) {
	sim := simtime.New(11)
	inst, err := New(sim, Config{
		Name: "bare", Sensors: 1, Analyzers: 1,
		Engine: func() detect.Engine {
			return detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	inst.Instrument(reg)
	deliver := inst.deliverFunc(inst.Analyzers()[0])

	inst.SetAlertLoss(true)
	deliver([]detect.Alert{{Technique: "probe"}, {Technique: "flood"}})
	inst.SetAlertLoss(false)
	sim.Run()

	if inst.AlertsLost != 2 {
		t.Fatalf("AlertsLost = %d, want 2", inst.AlertsLost)
	}
	if got := reg.Counter("ids.alerts_lost").Value(); got != 2 {
		t.Fatalf("alerts_lost counter = %d, want 2", got)
	}
	if got := inst.Analyzers()[0].AlertsSeen; got != 0 {
		t.Fatalf("severed path still delivered %d alerts", got)
	}
	if got := inst.Stats().AlertsLost; got != 2 {
		t.Fatalf("Stats().AlertsLost = %d, want 2", got)
	}
}

func TestAnalyzerStallSpoolOverflowAccounted(t *testing.T) {
	sim, inst, reg := resilientIDS(t, Resilience{SpoolLimit: 2, RetryBackoff: 100 * time.Millisecond})
	an := inst.Analyzers()[0]
	an.SetStalled(true)
	an.Submit([]detect.Alert{
		{Technique: "a"}, {Technique: "b"}, {Technique: "c"}, {Technique: "d"},
	})

	if an.DroppedAlerts != 2 {
		t.Fatalf("DroppedAlerts = %d, want 2 (spool limit 2)", an.DroppedAlerts)
	}
	if got := reg.Counter("ids.analyzer.alerts_dropped").Value(); got != 2 {
		t.Fatalf("alerts_dropped counter = %d, want 2", got)
	}
	if an.SpoolPeak != 2 {
		t.Fatalf("SpoolPeak = %d, want 2", an.SpoolPeak)
	}

	sim.MustSchedule(150*time.Millisecond, func() { an.SetStalled(false) })
	sim.Run()

	if an.SpoolDelivered != 2 {
		t.Fatalf("SpoolDelivered = %d, want 2", an.SpoolDelivered)
	}
	// Every submitted alert is in exactly one bucket.
	if an.AlertsSeen+an.DroppedAlerts != 4 {
		t.Fatalf("accounting leak: seen %d + dropped %d != 4 submitted", an.AlertsSeen, an.DroppedAlerts)
	}
	st := inst.Stats()
	if st.AlertsDropped != 2 || st.SpoolDelivered != 2 {
		t.Fatalf("Stats dropped/delivered = %d/%d, want 2/2", st.AlertsDropped, st.SpoolDelivered)
	}
}

func TestAnalyzerStallWithoutSpoolDropsAll(t *testing.T) {
	sim := simtime.New(11)
	inst, err := New(sim, Config{
		Name: "bare", Sensors: 1, Analyzers: 1,
		Engine: func() detect.Engine {
			return detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	inst.Instrument(reg)
	an := inst.Analyzers()[0]

	an.SetStalled(true)
	an.Submit([]detect.Alert{{Technique: "a"}, {Technique: "b"}, {Technique: "c"}})
	an.SetStalled(false)
	sim.Run()

	if an.DroppedAlerts != 3 {
		t.Fatalf("DroppedAlerts = %d, want 3 (no spool configured)", an.DroppedAlerts)
	}
	if got := reg.Counter("ids.analyzer.alerts_dropped").Value(); got != 3 {
		t.Fatalf("alerts_dropped counter = %d, want 3", got)
	}
	if an.AlertsSeen != 0 {
		t.Fatalf("unspooled stall still delivered %d alerts", an.AlertsSeen)
	}
}

func TestMgmtOutageSpoolsAndDrainsConsoleDeliveries(t *testing.T) {
	sim, inst, reg := resilientIDS(t, Resilience{SpoolLimit: 1, RetryBackoff: 100 * time.Millisecond})
	m := inst.Monitor()
	an := inst.Analyzers()[0]

	m.SetMgmtOutage(true)
	// Two distinct incidents above the notify threshold: the first console
	// delivery spools (limit 1), the second is counted lost.
	an.Submit([]detect.Alert{{Technique: "probe", Severity: 0.9, Engine: "sig"}})
	an.Submit([]detect.Alert{{Technique: "flood", Severity: 0.8, Engine: "sig"}})

	if len(m.Notifications) != 2 {
		t.Fatalf("operator notifications = %d, want 2 (monitor view survives the outage)", len(m.Notifications))
	}
	if m.MgmtDropped != 1 {
		t.Fatalf("MgmtDropped = %d, want 1", m.MgmtDropped)
	}
	if got := reg.Counter("ids.monitor.mgmt_dropped").Value(); got != 1 {
		t.Fatalf("mgmt_dropped counter = %d, want 1", got)
	}

	sim.MustSchedule(250*time.Millisecond, func() { m.SetMgmtOutage(false) })
	sim.Run()

	if m.MgmtDelivered != 1 {
		t.Fatalf("MgmtDelivered = %d, want 1 (spooled incident drained)", m.MgmtDelivered)
	}
	if m.MgmtRetries == 0 {
		t.Fatal("no retry recorded while the channel was down")
	}
	if got := reg.Counter("ids.monitor.mgmt_retries").Value(); got != m.MgmtRetries {
		t.Fatalf("mgmt_retries counter = %d, want %d", got, m.MgmtRetries)
	}
	if got := inst.Stats().MgmtDropped; got != 1 {
		t.Fatalf("Stats().MgmtDropped = %d, want 1", got)
	}
}
