package ids

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/simtime"
)

func simtimeNew1() *simtime.Sim { return simtime.New(1) }

func TestEvidenceBundleCollectsAlertsAndRecording(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	// Three attack packets: first alert arms recording; the rest are
	// captured and folded into the same incident.
	for i := 0; i < 3; i++ {
		s.Ingest(attackPkt(1))
		sim.Run()
	}
	if len(s.Monitor().Incidents) != 1 {
		t.Fatalf("%d incidents", len(s.Monitor().Incidents))
	}
	inc := s.Monitor().Incidents[0]
	b := s.Evidence(inc)
	if len(b.Alerts) != 3 {
		t.Fatalf("%d sample alerts, want 3", len(b.Alerts))
	}
	if b.Recording == nil || len(b.Recording.Packets) == 0 {
		t.Fatal("no recording attached to evidence")
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"technique": "stub-attack"`, `"alerts"`, `"recorded_packets"`, `"reason": "X marker"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("evidence JSON missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(b.Summary(), "stub-attack") {
		t.Fatalf("summary = %q", b.Summary())
	}
}

func TestEvidenceSampleCap(t *testing.T) {
	sim, s := recordingIDS(t, 0)
	for i := 0; i < maxSampleAlerts+20; i++ {
		s.Ingest(attackPkt(1))
		sim.Run()
	}
	inc := s.Monitor().Incidents[0]
	if len(inc.sampleAlerts) != maxSampleAlerts {
		t.Fatalf("sample alerts = %d, want cap %d", len(inc.sampleAlerts), maxSampleAlerts)
	}
	if inc.AlertCount != maxSampleAlerts+20 {
		t.Fatalf("AlertCount = %d", inc.AlertCount)
	}
}

func TestEvidenceWithoutRecording(t *testing.T) {
	sim := simtimeNew1()
	s, err := New(sim, Config{Name: "plain", Engine: stubFactory})
	if err != nil {
		t.Fatal(err)
	}
	s.Ingest(attackPkt(1))
	sim.Run()
	b := s.Evidence(s.Monitor().Incidents[0])
	if b.Recording != nil {
		t.Fatal("recording present without RecordSessions")
	}
	if !strings.Contains(b.Summary(), "no session recording") {
		t.Fatalf("summary = %q", b.Summary())
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "recorded_packets") {
		t.Fatal("empty recording serialized")
	}
}
