package ids

import (
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// ResponseAction is an automated reaction the management console can take
// when notified of a threat — the near-real-time response channel the
// Firewall/Router/SNMP Interaction metrics score.
type ResponseAction int

// Response actions.
const (
	// ActionNone records the threat only.
	ActionNone ResponseAction = iota
	// ActionFirewallBlock adds the attacker to the firewall block list.
	ActionFirewallBlock
	// ActionRouterRedirect redirects the attacker's traffic (honeypot).
	ActionRouterRedirect
	// ActionSNMPTrap sends an SNMP trap to network devices.
	ActionSNMPTrap
)

// String names the action.
func (a ResponseAction) String() string {
	switch a {
	case ActionFirewallBlock:
		return "firewall-block"
	case ActionRouterRedirect:
		return "router-redirect"
	case ActionSNMPTrap:
		return "snmp-trap"
	default:
		return "none"
	}
}

// Firewall is the external blocking device the console drives.
type Firewall struct {
	blocked map[packet.Addr]bool
	// BlockEvents records each block with its time.
	BlockEvents []BlockEvent
	// FilteredPackets counts packets the block list stopped.
	FilteredPackets uint64
}

// BlockEvent is one firewall update.
type BlockEvent struct {
	At   time.Duration
	Addr packet.Addr
}

// Blocked reports whether addr is on the block list.
func (f *Firewall) Blocked(addr packet.Addr) bool { return f.blocked[addr] }

// Console is the managing subprocess: central configuration of every
// other component (1c:M) and automated threat response via external
// devices. Policy maps technique to action; "policy must be accurate, for
// faulty policy risks shutting out legitimate users".
type Console struct {
	sim *simtime.Sim
	ids *IDS

	// Policy maps attack technique -> automated response.
	Policy map[string]ResponseAction
	// ResponseLatency models the console->device control path.
	ResponseLatency time.Duration

	Firewall  *Firewall
	SNMPTraps []SNMPTrap
	Redirects []Redirect

	// ConfigPushes counts centralized reconfigurations (1c:M evidence).
	ConfigPushes int

	// peers receive shared block intelligence (Information Sharing
	// capability). Propagation is one hop: shared blocks are not
	// re-shared, so rings cannot loop.
	peers []*Console
	// SharedBlocksIn counts blocks learned from peers.
	SharedBlocksIn int
	// ShareLatency models the console-to-console exchange path.
	ShareLatency time.Duration
}

// SNMPTrap is one emitted trap.
type SNMPTrap struct {
	At        time.Duration
	Technique string
	Attacker  packet.Addr
}

// Redirect is one router redirection.
type Redirect struct {
	At       time.Duration
	Attacker packet.Addr
}

// NewConsole attaches a console to an IDS.
func NewConsole(sim *simtime.Sim, owner *IDS) *Console {
	return &Console{
		sim: sim, ids: owner,
		Policy:          make(map[string]ResponseAction),
		ResponseLatency: 5 * time.Millisecond,
		ShareLatency:    50 * time.Millisecond,
		Firewall:        &Firewall{blocked: make(map[packet.Addr]bool)},
	}
}

// ShareWith registers a peer console to receive this console's block
// intelligence — the Information Sharing performance capability: "ability
// to exchange threat information with other IDS installations."
func (c *Console) ShareWith(peer *Console) {
	if peer == nil || peer == c {
		return
	}
	for _, p := range c.peers {
		if p == peer {
			return
		}
	}
	c.peers = append(c.peers, peer)
}

// applyBlock installs a firewall block and, when origin is local,
// propagates it to peers after the sharing latency.
func (c *Console) applyBlock(attacker packet.Addr, local bool) {
	if c.Firewall.blocked[attacker] {
		return
	}
	c.Firewall.blocked[attacker] = true
	c.Firewall.BlockEvents = append(c.Firewall.BlockEvents, BlockEvent{At: c.sim.Now(), Addr: attacker})
	if !local {
		c.SharedBlocksIn++
		return
	}
	for _, peer := range c.peers {
		peer := peer
		c.sim.MustSchedule(c.ShareLatency, func() { peer.applyBlock(attacker, false) })
	}
}

// SetPolicy maps a technique to an automated action.
func (c *Console) SetPolicy(technique string, a ResponseAction) {
	c.Policy[technique] = a
}

// handleThreat reacts to a monitor notification per policy.
func (c *Console) handleThreat(inc *ReportedIncident) {
	action, ok := c.Policy[inc.Technique]
	if !ok || action == ActionNone {
		return
	}
	attacker := inc.Attacker
	technique := inc.Technique
	c.sim.MustSchedule(c.ResponseLatency, func() {
		now := c.sim.Now()
		switch action {
		case ActionFirewallBlock:
			c.applyBlock(attacker, true)
		case ActionRouterRedirect:
			c.Redirects = append(c.Redirects, Redirect{At: now, Attacker: attacker})
		case ActionSNMPTrap:
			c.SNMPTraps = append(c.SNMPTraps, SNMPTrap{At: now, Technique: technique, Attacker: attacker})
		}
	})
}

// PushSensitivity centrally reconfigures every sensor — the Distributed
// Management capability ("numbers of them configured centrally").
func (c *Console) PushSensitivity(v float64) error {
	c.ConfigPushes++
	return c.ids.SetSensitivity(v)
}

// Unblock removes an address from the firewall (operator remediation of
// faulty policy).
func (c *Console) Unblock(addr packet.Addr) {
	delete(c.Firewall.blocked, addr)
}
