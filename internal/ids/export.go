package ids

import (
	"io"
	"sort"

	"repro/internal/fsio"
	"repro/internal/packet"
	"repro/internal/trace"
)

// ExportRecordings writes every session recording as one IDT2 trace —
// the playback half of the Session Recording and Playback capability in
// a form the replay tooling understands. Packets from all recorded
// flows merge onto a single timeline ordered by (send time, sequence)
// and are encoded chunk-by-chunk through the streaming trace writer, so
// export memory beyond the recordings themselves is O(chunk).
func (s *IDS) ExportRecordings(w io.Writer, profile string) error {
	var pkts []*packet.Packet
	for _, rec := range s.Recordings() {
		pkts = append(pkts, rec.Packets...)
	}
	sort.SliceStable(pkts, func(i, j int) bool {
		if pkts[i].Sent != pkts[j].Sent {
			return pkts[i].Sent < pkts[j].Sent
		}
		return pkts[i].Seq < pkts[j].Seq
	})
	tw, err := trace.NewWriter(w, profile, s.sim.Seed())
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if err := tw.Append(p.Sent, p); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ExportRecordingsFile writes the recordings trace to path atomically:
// the stream is encoded into a temp file in the same directory, synced,
// and renamed into place, so a crash mid-export can never leave a torn
// trace where tooling will later look for a complete one.
func (s *IDS) ExportRecordingsFile(path, profile string) error {
	return fsio.WriteAtomic(path, func(w io.Writer) error {
		return s.ExportRecordings(w, profile)
	})
}
