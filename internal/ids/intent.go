package ids

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/packet"
)

// Intent is the analyzer's second-order classification of what an
// attacker is trying to accomplish — the Analysis of Intruder Intent
// performance capability. Section 2.2: "Primary analysis determines
// threat severity. Secondary analysis determines scope, intent, or
// frequency of the threat."
type Intent int

// Intent categories, ordered by campaign progression.
const (
	IntentUnknown Intent = iota
	// IntentReconnaissance: mapping the target (scans, probes).
	IntentReconnaissance
	// IntentDenial: degrading availability (floods).
	IntentDenial
	// IntentPenetration: gaining access (exploits, brute force).
	IntentPenetration
	// IntentEscalation: consolidating control (masquerade, privilege).
	IntentEscalation
	// IntentExfiltration: removing data (tunnels, insider pulls).
	IntentExfiltration
)

// String names the intent.
func (i Intent) String() string {
	switch i {
	case IntentReconnaissance:
		return "reconnaissance"
	case IntentDenial:
		return "denial-of-service"
	case IntentPenetration:
		return "penetration"
	case IntentEscalation:
		return "escalation"
	case IntentExfiltration:
		return "exfiltration"
	default:
		return "unknown"
	}
}

// techniqueIntent maps detector technique labels to intents. Anomaly
// engines emit behaviour labels; signature engines emit attack-class
// labels; both map.
var techniqueIntent = map[string]Intent{
	"portscan":        IntentReconnaissance,
	"synflood":        IntentDenial,
	"rate-anomaly":    IntentDenial,
	"bruteforce":      IntentPenetration,
	"exploit":         IntentPenetration,
	"masquerade":      IntentEscalation,
	"insider-misuse":  IntentExfiltration,
	"dns-tunnel":      IntentExfiltration,
	"content-anomaly": IntentExfiltration,
	"novel-service":   IntentReconnaissance,
}

// ClassifyIntent maps one technique label to an intent category.
func ClassifyIntent(technique string) Intent {
	return techniqueIntent[technique]
}

// AttackerProfile is the analyzer's per-attacker second-order view:
// which intents the attacker has shown, how many victims, and a campaign
// stage estimate.
type AttackerProfile struct {
	Attacker packet.Addr
	// Intents observed, with incident counts.
	Intents map[Intent]int
	// Victims is the distinct victim count (scope of the threat).
	Victims int
	// FirstSeen/LastSeen bound the attacker's activity.
	FirstSeen, LastSeen time.Duration
	// Stage is the furthest campaign stage observed.
	Stage Intent
	// Incidents contributing to the profile.
	Incidents int
}

// String renders a one-line profile.
func (p *AttackerProfile) String() string {
	return fmt.Sprintf("%v: %d incidents, %d victims, stage=%v",
		p.Attacker, p.Incidents, p.Victims, p.Stage)
}

// IntentReport performs second-order analysis across the monitor's
// incidents: per-attacker profiles with scope (victim count) and the
// furthest campaign stage. Attackers are returned most-advanced first
// (deeper stage, then more victims).
func (m *Monitor) IntentReport() []*AttackerProfile {
	byAttacker := make(map[packet.Addr]*AttackerProfile)
	victims := make(map[packet.Addr]map[packet.Addr]bool)
	for _, inc := range m.Incidents {
		if inc.Attacker == 0 {
			continue
		}
		p, ok := byAttacker[inc.Attacker]
		if !ok {
			p = &AttackerProfile{
				Attacker:  inc.Attacker,
				Intents:   make(map[Intent]int),
				FirstSeen: inc.FirstAlert,
				LastSeen:  inc.LastAlert,
			}
			byAttacker[inc.Attacker] = p
			victims[inc.Attacker] = make(map[packet.Addr]bool)
		}
		p.Incidents++
		intent := ClassifyIntent(inc.Technique)
		p.Intents[intent]++
		if intent > p.Stage {
			p.Stage = intent
		}
		if inc.Victim != 0 {
			victims[inc.Attacker][inc.Victim] = true
		}
		if inc.FirstAlert < p.FirstSeen {
			p.FirstSeen = inc.FirstAlert
		}
		if inc.LastAlert > p.LastSeen {
			p.LastSeen = inc.LastAlert
		}
	}
	out := make([]*AttackerProfile, 0, len(byAttacker))
	for a, p := range byAttacker {
		p.Victims = len(victims[a])
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Stage != out[j].Stage {
			return out[i].Stage > out[j].Stage
		}
		if out[i].Victims != out[j].Victims {
			return out[i].Victims > out[j].Victims
		}
		return out[i].Attacker < out[j].Attacker
	})
	return out
}
