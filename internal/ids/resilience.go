package ids

import (
	"time"

	"repro/internal/detect"
	"repro/internal/obs"
)

// Resilience configures the opt-in self-healing layer: a monitor-driven
// heartbeat that tracks per-sensor health, balancer rerouting away from
// dead or degraded sensors, and bounded spooling with retry/backoff for
// alerts caught in transit by an outage. The layer is off by default —
// an IDS without EnableResilience behaves bit-identically to one built
// before the layer existed, which is what the no-faults determinism
// guard pins.
type Resilience struct {
	// HeartbeatEvery is the health-poll period (default 500ms).
	HeartbeatEvery time.Duration
	// SpoolLimit bounds every spool (alerts or notifications) introduced
	// by the layer (default 4096). Overflow is counted, never buffered.
	SpoolLimit int
	// RetryBackoff is the initial redelivery delay (default 250ms).
	RetryBackoff time.Duration
	// RetryMax caps the doubling backoff (default 4s).
	RetryMax time.Duration
}

func (r *Resilience) applyDefaults() {
	if r.HeartbeatEvery <= 0 {
		r.HeartbeatEvery = 500 * time.Millisecond
	}
	if r.SpoolLimit <= 0 {
		r.SpoolLimit = 4096
	}
	if r.RetryBackoff <= 0 {
		r.RetryBackoff = 250 * time.Millisecond
	}
	if r.RetryMax <= 0 {
		r.RetryMax = 4 * time.Second
	}
}

// spooledBatch is one alert batch held back by the sensor→analyzer
// transit spool during an alert-loss fault.
type spooledBatch struct {
	an     *Analyzer
	alerts []detect.Alert
}

// resilienceState is the live self-healing machinery of one IDS.
type resilienceState struct {
	cfg   Resilience
	owner *IDS

	running bool
	healthy []bool

	// Transit spool for the sensor→analyzer path (alert-loss fault).
	spool      []spooledBatch
	spoolCount int
	retryArmed bool
	curBackoff time.Duration

	// HealthChecks counts heartbeat polls.
	HealthChecks uint64
	// Rerouted counts packets steered away from an unhealthy sensor.
	Rerouted uint64
	// Spooled / SpoolDelivered count alerts through the transit spool.
	Spooled        uint64
	SpoolDelivered uint64
	// Retries counts transit redelivery attempts that found the fault
	// still active.
	Retries uint64

	cRerouted, cSpooled, cDelivered *obs.Counter
	gUnhealthy                      *obs.Gauge
}

// EnableResilience switches the self-healing layer on. Call before the
// run starts; the heartbeat itself is started with StartHealthLoop so
// the caller controls when ticking begins (and Drain can finish).
func (s *IDS) EnableResilience(r Resilience) {
	r.applyDefaults()
	rs := &resilienceState{cfg: r, owner: s, healthy: make([]bool, len(s.sensors))}
	for i := range rs.healthy {
		rs.healthy[i] = true
	}
	s.res = rs
	for _, a := range s.analyzers {
		a.configureSpool(r.SpoolLimit, r.RetryBackoff, r.RetryMax)
	}
	s.monitor.configureMgmtSpool(r.SpoolLimit, r.RetryBackoff, r.RetryMax)
	rs.instrument(s.obsReg)
}

// ResilienceEnabled reports whether the self-healing layer is on.
func (s *IDS) ResilienceEnabled() bool { return s.res != nil }

// ResilienceStats exposes the layer's counters (zero value when off).
type ResilienceStats struct {
	HealthChecks   uint64
	Rerouted       uint64
	Spooled        uint64
	SpoolDelivered uint64
	Retries        uint64
}

// ResilienceStats snapshots the self-healing counters.
func (s *IDS) ResilienceStats() ResilienceStats {
	if s.res == nil {
		return ResilienceStats{}
	}
	return ResilienceStats{
		HealthChecks:   s.res.HealthChecks,
		Rerouted:       s.res.Rerouted,
		Spooled:        s.res.Spooled,
		SpoolDelivered: s.res.SpoolDelivered,
		Retries:        s.res.Retries,
	}
}

// StartHealthLoop begins heartbeat polling. No-op without resilience.
func (s *IDS) StartHealthLoop() {
	if s.res == nil || s.res.running {
		return
	}
	s.res.running = true
	s.res.tick()
}

// StopHealthLoop halts heartbeat polling so a draining simulation can
// reach an empty event queue.
func (s *IDS) StopHealthLoop() {
	if s.res != nil {
		s.res.running = false
	}
}

func (rs *resilienceState) instrument(reg *obs.Registry) {
	if reg == nil {
		return
	}
	rs.cRerouted = reg.Counter("ids.balancer.rerouted")
	rs.cSpooled = reg.Counter("ids.spool.spooled")
	rs.cDelivered = reg.Counter("ids.spool.delivered")
	rs.gUnhealthy = reg.Gauge("ids.health.unhealthy")
}

// tick is one heartbeat: classify every sensor, then re-arm. A sensor is
// healthy when up with a queue below three quarters of its limit — the
// same degradation signal an operator's health dashboard would key on.
func (rs *resilienceState) tick() {
	if !rs.running {
		return
	}
	rs.HealthChecks++
	unhealthy := 0
	for i, sn := range rs.owner.sensors {
		h := sn.State() == SensorUp && sn.QueueDepth() < (3*sn.QueueLimit())/4
		rs.healthy[i] = h
		if !h {
			unhealthy++
		}
	}
	rs.gUnhealthy.Set(int64(unhealthy))
	rs.owner.sim.MustSchedule(rs.cfg.HeartbeatEvery, rs.tick)
}

// reroute steers a packet destined for an unhealthy sensor to the
// lowest-indexed healthy one. With no healthy sensor left, the original
// pick stands (and its failure mode decides the pass verdict).
func (rs *resilienceState) reroute(picked *Sensor) *Sensor {
	if rs.healthy[picked.ID()] {
		return picked
	}
	for i, h := range rs.healthy {
		if h {
			rs.Rerouted++
			rs.cRerouted.Inc()
			return rs.owner.sensors[i]
		}
	}
	return picked
}

// spoolBatch holds an alert batch caught by the alert-loss fault for
// redelivery. Whole-batch granularity: a batch that does not fit is
// refused and the caller accounts the loss.
func (rs *resilienceState) spoolBatch(an *Analyzer, alerts []detect.Alert) bool {
	if rs.spoolCount+len(alerts) > rs.cfg.SpoolLimit {
		return false
	}
	rs.spool = append(rs.spool, spooledBatch{an: an, alerts: alerts})
	rs.spoolCount += len(alerts)
	rs.Spooled += uint64(len(alerts))
	rs.cSpooled.Add(uint64(len(alerts)))
	rs.armRetry()
	return true
}

func (rs *resilienceState) armRetry() {
	if rs.retryArmed {
		return
	}
	rs.retryArmed = true
	delay := rs.curBackoff
	if delay <= 0 {
		delay = rs.cfg.RetryBackoff
	}
	rs.owner.sim.MustSchedule(delay, rs.retryFlush)
}

// retryFlush redelivers the transit spool once the alert-loss fault has
// cleared, backing off (doubling, capped) while it persists.
func (rs *resilienceState) retryFlush() {
	rs.retryArmed = false
	if len(rs.spool) == 0 {
		rs.curBackoff = 0
		return
	}
	if rs.owner.alertLossActive {
		rs.Retries++
		rs.curBackoff *= 2
		if rs.curBackoff < rs.cfg.RetryBackoff {
			rs.curBackoff = rs.cfg.RetryBackoff
		}
		if rs.curBackoff > rs.cfg.RetryMax {
			rs.curBackoff = rs.cfg.RetryMax
		}
		rs.armRetry()
		return
	}
	batches := rs.spool
	rs.spool = nil
	rs.spoolCount = 0
	rs.curBackoff = 0
	for _, b := range batches {
		rs.SpoolDelivered += uint64(len(b.alerts))
		rs.cDelivered.Add(uint64(len(b.alerts)))
		b.an.Submit(b.alerts)
	}
}
