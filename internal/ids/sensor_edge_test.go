package ids

import (
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// edgeSensor builds a lone sensor with the given lethal-dose knobs. The
// queue limit is zero so every Offer is a drop — the drop-window logic
// can then be driven one packet at a time.
func edgeSensor(t *testing.T, lethalRate int, restartAfter time.Duration) (*simtime.Sim, *Sensor) {
	t.Helper()
	sim := simtime.New(5)
	eng := detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
	s := NewSensor(sim, 0, eng, 0, FailOpen, lethalRate, restartAfter)
	return sim, s
}

func offerAt(sim *simtime.Sim, s *Sensor, at time.Duration) {
	sim.MustSchedule(at-time.Duration(sim.Now()), func() {
		s.Offer(&packet.Packet{Payload: []byte("x")})
	})
}

func TestDropWindowBoundaryExactlyOneSecond(t *testing.T) {
	// The tumbling window resets only when now-start exceeds 1s
	// strictly: a drop at exactly start+1s still lands in the window.
	sim, s := edgeSensor(t, 3, 0)
	offerAt(sim, s, 0)           // window start, drop 1
	offerAt(sim, s, time.Second) // exactly 1s later: same window, drop 2
	offerAt(sim, s, time.Second) // drop 3 -> lethal
	sim.Run()
	if s.State() != SensorFailed {
		t.Fatal("drop at exactly the 1s boundary started a fresh window; want same window (strict >)")
	}

	// One nanosecond past the boundary does reset.
	sim2, s2 := edgeSensor(t, 3, 0)
	offerAt(sim2, s2, 0)
	offerAt(sim2, s2, time.Second+time.Nanosecond) // new window, count restarts
	offerAt(sim2, s2, time.Second+time.Nanosecond)
	sim2.Run()
	if s2.State() == SensorFailed {
		t.Fatal("window failed to reset past the 1s boundary")
	}
	if s2.dropsThisWindow != 2 {
		t.Fatalf("dropsThisWindow = %d after reset, want 2", s2.dropsThisWindow)
	}
}

func TestLethalRateOnFirstDrop(t *testing.T) {
	// lethalRate 1: the window's very first drop is already lethal.
	sim, s := edgeSensor(t, 1, 0)
	offerAt(sim, s, 0)
	sim.Run()
	if s.State() != SensorFailed {
		t.Fatal("lethalRate=1 sensor survived its first drop")
	}
	if s.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", s.Failures)
	}
}

func TestRestartAfterZeroNeverRestarts(t *testing.T) {
	sim, s := edgeSensor(t, 1, 0)
	offerAt(sim, s, 0)
	sim.RunUntil(time.Hour)
	if s.State() != SensorFailed {
		t.Fatal("restartAfter=0 sensor came back")
	}
	if got := s.Downtime(); got != time.Hour {
		t.Fatalf("ongoing Downtime = %v, want 1h", got)
	}
	// Offers to the dead sensor are dropped without rearming anything.
	before := s.Dropped
	s.Offer(&packet.Packet{Payload: []byte("x")})
	if s.Dropped != before+1 || s.State() != SensorFailed {
		t.Fatal("dead sensor did not account the refused packet")
	}
}

func TestDowntimeAcrossMultipleCycles(t *testing.T) {
	// Two full fail->restart cycles plus an ongoing third outage:
	// Downtime must be the exact sum.
	sim, s := edgeSensor(t, 1, 2*time.Second)
	offerAt(sim, s, 0)             // fail #1 at 0, restart at 2s
	offerAt(sim, s, 5*time.Second) // fail #2 at 5s, restart at 7s
	offerAt(sim, s, 9*time.Second) // fail #3 at 9s, restart pending
	sim.RunUntil(10 * time.Second)
	if s.Failures != 3 {
		t.Fatalf("Failures = %d, want 3", s.Failures)
	}
	// 2s + 2s completed, plus 1s of the ongoing outage at now=10s.
	if got := s.Downtime(); got != 5*time.Second {
		t.Fatalf("Downtime = %v, want 5s", got)
	}
	if s.FailedDuration != 4*time.Second {
		t.Fatalf("FailedDuration (completed outages) = %v, want 4s", s.FailedDuration)
	}
	sim.Run() // let the third restart land at 11s
	if s.State() != SensorUp {
		t.Fatal("third restart never landed")
	}
	if got := s.Downtime(); got != 6*time.Second {
		t.Fatalf("final Downtime = %v, want 6s", got)
	}
}

func TestInjectedHangIgnoresRestartTimer(t *testing.T) {
	// A hang beats the product's own restart policy: the watchdog fires
	// and finds the sensor wedged.
	sim, s := edgeSensor(t, 0, time.Second)
	sim.MustSchedule(0, s.InjectHang)
	sim.RunUntil(10 * time.Second)
	if s.State() != SensorFailed {
		t.Fatal("hung sensor restarted via its own timer")
	}
	s.InjectRecover()
	if s.State() != SensorUp {
		t.Fatal("InjectRecover did not revive the hung sensor")
	}
	if got := s.Downtime(); got != 10*time.Second {
		t.Fatalf("hang Downtime = %v, want 10s", got)
	}
}

func TestInjectedSlowdownStretchesProcessing(t *testing.T) {
	sim := simtime.New(5)
	eng := detect.NewSignatureEngine(detect.StandardContentRules(), detect.StandardThresholdRules())
	s := NewSensor(sim, 0, eng, 16, FailOpen, 0, 0)
	p := &packet.Packet{Payload: []byte("hello world")}

	s.Offer(p)
	nominal := s.BusyTime
	s.InjectSlowdown(0.25)
	s.Offer(p)
	stretched := s.BusyTime - nominal
	if stretched != nominal*4 {
		t.Fatalf("slowdown 0.25 cost %v per packet, want 4x nominal %v", stretched, nominal)
	}
	s.InjectSlowdown(0)
	s.Offer(p)
	if back := s.BusyTime - nominal - stretched; back != nominal {
		t.Fatalf("cleared slowdown cost %v, want nominal %v", back, nominal)
	}
}
