package packet

// SeqCounter issues unique packet sequence numbers. Generators and attack
// scenarios share one counter per simulation so that loss accounting can
// treat Seq as a global identity.
type SeqCounter struct {
	n uint64
}

// Next returns the next sequence number, starting at 1 so the zero value
// of Packet.Seq means "unassigned".
func (c *SeqCounter) Next() uint64 {
	c.n++
	return c.n
}

// Issued returns how many sequence numbers have been handed out.
func (c *SeqCounter) Issued() uint64 { return c.n }
