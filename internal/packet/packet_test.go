package packet

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestIPv4String(t *testing.T) {
	a := IPv4(192, 168, 1, 20)
	if got := a.String(); got != "192.168.1.20" {
		t.Fatalf("String() = %q", got)
	}
	o1, o2, o3, o4 := a.Octets()
	if o1 != 192 || o2 != 168 || o3 != 1 || o4 != 20 {
		t.Fatalf("Octets() = %d.%d.%d.%d", o1, o2, o3, o4)
	}
}

func TestProtoString(t *testing.T) {
	cases := map[Proto]string{ProtoTCP: "TCP", ProtoUDP: "UDP", ProtoICMP: "ICMP", Proto(99): "proto(99)"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
}

func TestTCPFlags(t *testing.T) {
	f := SYN | ACK
	if !f.Has(SYN) || !f.Has(ACK) || f.Has(FIN) {
		t.Fatal("flag membership wrong")
	}
	if got := f.String(); got != "SA" {
		t.Fatalf("String() = %q, want SA", got)
	}
	if got := TCPFlags(0).String(); got != "." {
		t.Fatalf("empty flags String() = %q", got)
	}
}

func testKey() FlowKey {
	return FlowKey{
		Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2),
		SrcPort: 40000, DstPort: 80, Proto: ProtoTCP,
	}
}

func TestFlowKeyReverse(t *testing.T) {
	k := testKey()
	r := k.Reverse()
	if r.Src != k.Dst || r.Dst != k.Src || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Fatalf("Reverse() = %v", r)
	}
	if r.Reverse() != k {
		t.Fatal("Reverse is not an involution")
	}
}

func TestFlowKeyCanonicalBothDirectionsEqual(t *testing.T) {
	k := testKey()
	if k.Canonical() != k.Reverse().Canonical() {
		t.Fatal("both directions must canonicalize identically")
	}
}

func TestFlowKeyHashDirectionIndependent(t *testing.T) {
	k := testKey()
	if k.Hash() != k.Reverse().Hash() {
		t.Fatal("hash must be direction independent")
	}
}

// Property: canonicalization is idempotent and direction-independent for
// arbitrary keys.
func TestPropertyCanonical(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8) bool {
		k := FlowKey{Src: Addr(src), Dst: Addr(dst), SrcPort: sp, DstPort: dp, Proto: Proto(proto)}
		c := k.Canonical()
		return c == c.Canonical() && c == k.Reverse().Canonical()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPacketWireLenAndClone(t *testing.T) {
	p := &Packet{Src: IPv4(1, 2, 3, 4), Payload: []byte("hello")}
	if p.WireLen() != HeaderBytes+5 {
		t.Fatalf("WireLen() = %d", p.WireLen())
	}
	q := p.Clone()
	q.Payload[0] = 'H'
	if p.Payload[0] != 'h' {
		t.Fatal("Clone shares payload storage")
	}
	var empty Packet
	if c := empty.Clone(); c.Payload != nil {
		t.Fatal("Clone of nil payload produced non-nil payload")
	}
}

func TestFlowTable(t *testing.T) {
	ft := NewFlowTable()
	k := testKey()
	p := &Packet{Src: k.Src, Dst: k.Dst, SrcPort: k.SrcPort, DstPort: k.DstPort, Proto: k.Proto, Flags: SYN, Payload: []byte("x")}
	ft.Observe(p, time.Second)
	ft.Observe(p, 2*time.Second)
	if ft.Len() != 1 {
		t.Fatalf("Len() = %d", ft.Len())
	}
	st := ft.Get(k)
	if st == nil {
		t.Fatal("flow missing")
	}
	if st.Packets != 2 || st.Payloads != 2 || !st.SynSeen || st.FinSeen {
		t.Fatalf("stats = %+v", st)
	}
	if st.First != time.Second || st.Last != 2*time.Second {
		t.Fatalf("times = %v..%v", st.First, st.Last)
	}
	if got := ft.Get(k.Reverse()); got != nil {
		t.Fatal("reverse direction must be a distinct flow")
	}
}

func TestFlowTableKeysSorted(t *testing.T) {
	ft := NewFlowTable()
	for i := byte(10); i > 0; i-- {
		ft.Observe(&Packet{Src: IPv4(10, 0, 0, i), Dst: IPv4(10, 0, 0, 100), Proto: ProtoUDP}, 0)
	}
	keys := ft.Keys()
	if len(keys) != 10 {
		t.Fatalf("len(keys) = %d", len(keys))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].less(keys[i]) {
			t.Fatal("keys not sorted")
		}
	}
}

func mkTCP(k FlowKey, flags TCPFlags) *Packet {
	return &Packet{Src: k.Src, Dst: k.Dst, SrcPort: k.SrcPort, DstPort: k.DstPort, Proto: ProtoTCP, Flags: flags}
}

func TestTCPTrackerHandshakeLifecycle(t *testing.T) {
	tr := NewTCPTracker(0)
	k := testKey()
	tr.Observe(mkTCP(k, SYN), 0)
	if tr.Concurrent() != 0 {
		t.Fatal("session established after bare SYN")
	}
	tr.Observe(mkTCP(k.Reverse(), SYN|ACK), time.Millisecond)
	tr.Observe(mkTCP(k, ACK), 2*time.Millisecond)
	if tr.Concurrent() != 1 {
		t.Fatalf("Concurrent() = %d after handshake", tr.Concurrent())
	}
	if st, ok := tr.State(k); !ok || st != TCPStateEstablished {
		t.Fatalf("State() = %v, %v", st, ok)
	}
	tr.Observe(mkTCP(k, FIN|ACK), 3*time.Millisecond)
	if tr.Concurrent() != 0 {
		t.Fatalf("Concurrent() = %d after FIN", tr.Concurrent())
	}
	if tr.PeakConcurrent() != 1 || tr.TotalOpened() != 1 {
		t.Fatalf("peak=%d total=%d", tr.PeakConcurrent(), tr.TotalOpened())
	}
}

func TestTCPTrackerRSTCloses(t *testing.T) {
	tr := NewTCPTracker(0)
	k := testKey()
	tr.Observe(mkTCP(k, SYN), 0)
	tr.Observe(mkTCP(k.Reverse(), SYN|ACK), 1)
	tr.Observe(mkTCP(k, ACK), 2)
	tr.Observe(mkTCP(k.Reverse(), RST), 3)
	if tr.Concurrent() != 0 {
		t.Fatalf("Concurrent() = %d after RST", tr.Concurrent())
	}
}

func TestTCPTrackerMidStreamPickup(t *testing.T) {
	tr := NewTCPTracker(0)
	k := testKey()
	tr.Observe(mkTCP(k, ACK|PSH), 0)
	if tr.Concurrent() != 1 {
		t.Fatal("mid-stream traffic must be counted as an established session")
	}
}

func TestTCPTrackerPeakConcurrent(t *testing.T) {
	tr := NewTCPTracker(0)
	for i := byte(1); i <= 5; i++ {
		k := FlowKey{Src: IPv4(10, 0, 0, i), Dst: IPv4(10, 0, 1, 1), SrcPort: 1000 + uint16(i), DstPort: 80, Proto: ProtoTCP}
		tr.Observe(mkTCP(k, SYN), 0)
		tr.Observe(mkTCP(k, ACK), 1)
	}
	if tr.PeakConcurrent() != 5 || tr.Concurrent() != 5 {
		t.Fatalf("peak=%d cur=%d", tr.PeakConcurrent(), tr.Concurrent())
	}
}

func TestTCPTrackerExpire(t *testing.T) {
	tr := NewTCPTracker(10 * time.Second)
	k := testKey()
	tr.Observe(mkTCP(k, SYN), 0)
	tr.Observe(mkTCP(k, ACK), time.Second)
	if n := tr.Expire(5 * time.Second); n != 0 {
		t.Fatalf("expired %d sessions too early", n)
	}
	if n := tr.Expire(30 * time.Second); n != 1 {
		t.Fatalf("Expire = %d, want 1", n)
	}
	if tr.Concurrent() != 0 {
		t.Fatalf("Concurrent() = %d after expiry", tr.Concurrent())
	}
	// Zero timeout disables expiry entirely.
	tr2 := NewTCPTracker(0)
	tr2.Observe(mkTCP(k, ACK), 0)
	if n := tr2.Expire(time.Hour); n != 0 {
		t.Fatal("expiry ran with zero timeout")
	}
}

func TestTCPTrackerIgnoresNonTCP(t *testing.T) {
	tr := NewTCPTracker(0)
	tr.Observe(&Packet{Proto: ProtoUDP}, 0)
	if tr.Concurrent() != 0 || tr.TotalOpened() != 0 {
		t.Fatal("UDP affected TCP tracker")
	}
}

func BenchmarkFlowKeyHash(b *testing.B) {
	k := testKey()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Hash()
	}
}

func BenchmarkFlowTableObserve(b *testing.B) {
	ft := NewFlowTable()
	p := &Packet{Src: IPv4(10, 0, 0, 1), Dst: IPv4(10, 0, 0, 2), SrcPort: 1234, DstPort: 80, Proto: ProtoTCP}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.SrcPort = uint16(i % 5000)
		ft.Observe(p, time.Duration(i))
	}
}

func TestSeqCounter(t *testing.T) {
	var c SeqCounter
	if c.Issued() != 0 {
		t.Fatal("fresh counter issued nonzero")
	}
	if c.Next() != 1 || c.Next() != 2 {
		t.Fatal("sequence not monotonic from 1")
	}
	if c.Issued() != 2 {
		t.Fatalf("Issued() = %d", c.Issued())
	}
}

func TestFlowKeyString(t *testing.T) {
	k := testKey()
	want := "10.0.0.1:40000 > 10.0.0.2:80/TCP"
	if got := k.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Seq: 9, Src: IPv4(1, 2, 3, 4), Dst: IPv4(5, 6, 7, 8), SrcPort: 1, DstPort: 2, Proto: ProtoTCP, Flags: SYN, Payload: []byte("xy")}
	s := p.String()
	for _, want := range []string{"#9", "1.2.3.4:1", "5.6.7.8:2", "[S]", "len=56"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func TestTCPStateString(t *testing.T) {
	if TCPStateSynSent.String() != "syn-sent" || TCPStateEstablished.String() != "established" ||
		TCPStateClosed.String() != "closed" || TCPState(9).String() != "invalid" {
		t.Fatal("state names wrong")
	}
}

// Property: WireLen is always header size plus payload length, and Clone
// preserves it.
func TestPropertyWireLenClone(t *testing.T) {
	f := func(payload []byte) bool {
		p := &Packet{Payload: payload}
		return p.WireLen() == HeaderBytes+len(payload) && p.Clone().WireLen() == p.WireLen()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseAddrRoundTrip(t *testing.T) {
	for _, a := range []Addr{IPv4(0, 0, 0, 0), IPv4(10, 1, 1, 1), IPv4(203, 0, 113, 255), IPv4(255, 255, 255, 255)} {
		got, err := ParseAddr(a.String())
		if err != nil {
			t.Fatalf("ParseAddr(%q): %v", a.String(), err)
		}
		if got != a {
			t.Fatalf("ParseAddr(%q) = %v", a.String(), got)
		}
	}
	for _, s := range []string{"", "10.1.1", "10.1.1.1.1", "256.0.0.1", "a.b.c.d", "10..1.1", "-1.0.0.0", " 10.1.1.1"} {
		if _, err := ParseAddr(s); err == nil {
			t.Fatalf("ParseAddr(%q) accepted", s)
		}
	}
}

func TestParseTCPFlagsRoundTrip(t *testing.T) {
	for _, f := range []TCPFlags{0, SYN, SYN | ACK, FIN | ACK, RST, PSH | ACK | URG, SYN | FIN | RST | PSH | ACK | URG} {
		got, err := ParseTCPFlags(f.String())
		if err != nil {
			t.Fatalf("ParseTCPFlags(%q): %v", f.String(), err)
		}
		if got != f {
			t.Fatalf("ParseTCPFlags(%q) = %v, want %v", f.String(), got, f)
		}
	}
	if f, err := ParseTCPFlags(""); err != nil || f != 0 {
		t.Fatalf("empty flags: %v, %v", f, err)
	}
	if _, err := ParseTCPFlags("SX"); err == nil {
		t.Fatal("bad flag letter accepted")
	}
}
