package packet

import (
	"sort"
	"time"
)

// FlowStats accumulates per-flow counters.
type FlowStats struct {
	Packets  uint64
	Bytes    uint64
	First    time.Duration
	Last     time.Duration
	FinSeen  bool
	RstSeen  bool
	SynSeen  bool
	Payloads uint64 // packets that carried payload
}

// FlowTable aggregates packets into unidirectional flows. It is the basic
// bookkeeping structure behind sensors, load balancers, and the harness's
// stream counting.
type FlowTable struct {
	flows map[FlowKey]*FlowStats
}

// NewFlowTable returns an empty table.
func NewFlowTable() *FlowTable {
	return &FlowTable{flows: make(map[FlowKey]*FlowStats)}
}

// Observe accounts one packet at the given virtual time.
func (t *FlowTable) Observe(p *Packet, now time.Duration) *FlowStats {
	k := p.Key()
	st, ok := t.flows[k]
	if !ok {
		st = &FlowStats{First: now}
		t.flows[k] = st
	}
	st.Packets++
	st.Bytes += uint64(p.WireLen())
	st.Last = now
	if len(p.Payload) > 0 {
		st.Payloads++
	}
	if p.Proto == ProtoTCP {
		if p.Flags.Has(SYN) {
			st.SynSeen = true
		}
		if p.Flags.Has(FIN) {
			st.FinSeen = true
		}
		if p.Flags.Has(RST) {
			st.RstSeen = true
		}
	}
	return st
}

// Len returns the number of distinct unidirectional flows observed.
func (t *FlowTable) Len() int { return len(t.flows) }

// Get returns the stats for a flow, or nil if unseen.
func (t *FlowTable) Get(k FlowKey) *FlowStats { return t.flows[k] }

// Keys returns all flow keys in a deterministic (sorted) order.
func (t *FlowTable) Keys() []FlowKey {
	keys := make([]FlowKey, 0, len(t.flows))
	for k := range t.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// TCPState is the coarse connection state a session tracker maintains.
type TCPState int

// Session states, in normal progression order.
const (
	TCPStateSynSent TCPState = iota
	TCPStateEstablished
	TCPStateClosed
)

// String names the state.
func (s TCPState) String() string {
	switch s {
	case TCPStateSynSent:
		return "syn-sent"
	case TCPStateEstablished:
		return "established"
	case TCPStateClosed:
		return "closed"
	default:
		return "invalid"
	}
}

type tcpSession struct {
	state   TCPState
	opened  time.Duration
	updated time.Duration
}

// TCPTracker follows TCP session state from the packet stream. It exists
// for two of the paper's performance metrics — "Maximal Throughput with
// Zero Loss" and "Network Lethal Dose" are both expressed in packets/sec
// *or number of simultaneous TCP streams* — and for session-aware load
// balancing.
type TCPTracker struct {
	sessions map[FlowKey]*tcpSession
	// peakConcurrent is the high-water mark of simultaneously established
	// sessions.
	peakConcurrent int
	concurrent     int
	totalOpened    uint64
	idleTimeout    time.Duration
}

// NewTCPTracker returns a tracker that expires idle sessions after
// idleTimeout (zero disables expiry).
func NewTCPTracker(idleTimeout time.Duration) *TCPTracker {
	return &TCPTracker{
		sessions:    make(map[FlowKey]*tcpSession),
		idleTimeout: idleTimeout,
	}
}

// Observe advances session state from one packet. Non-TCP packets are
// ignored.
func (t *TCPTracker) Observe(p *Packet, now time.Duration) {
	if p.Proto != ProtoTCP {
		return
	}
	k := p.Key().Canonical()
	s, ok := t.sessions[k]
	switch {
	case !ok && p.Flags.Has(SYN):
		t.sessions[k] = &tcpSession{state: TCPStateSynSent, opened: now, updated: now}
	case !ok:
		// Mid-stream pickup: treat as established (sensors placed after
		// sessions began must still count them).
		t.sessions[k] = &tcpSession{state: TCPStateEstablished, opened: now, updated: now}
		t.concurrent++
		t.totalOpened++
		if t.concurrent > t.peakConcurrent {
			t.peakConcurrent = t.concurrent
		}
	default:
		s.updated = now
		switch {
		case s.state == TCPStateSynSent && p.Flags.Has(ACK) && !p.Flags.Has(SYN):
			s.state = TCPStateEstablished
			t.concurrent++
			t.totalOpened++
			if t.concurrent > t.peakConcurrent {
				t.peakConcurrent = t.concurrent
			}
		case s.state != TCPStateClosed && (p.Flags.Has(FIN) || p.Flags.Has(RST)):
			if s.state == TCPStateEstablished {
				t.concurrent--
			}
			s.state = TCPStateClosed
		}
	}
}

// Expire closes sessions idle longer than the tracker's timeout as of now.
// It returns how many sessions were expired.
func (t *TCPTracker) Expire(now time.Duration) int {
	if t.idleTimeout <= 0 {
		return 0
	}
	n := 0
	for k, s := range t.sessions {
		if s.state == TCPStateClosed || now-s.updated > t.idleTimeout {
			if s.state == TCPStateEstablished {
				t.concurrent--
			}
			delete(t.sessions, k)
			n++
		}
	}
	return n
}

// Concurrent returns the current number of established sessions.
func (t *TCPTracker) Concurrent() int { return t.concurrent }

// PeakConcurrent returns the high-water mark of simultaneous sessions.
func (t *TCPTracker) PeakConcurrent() int { return t.peakConcurrent }

// TotalOpened returns how many sessions ever reached the established state.
func (t *TCPTracker) TotalOpened() uint64 { return t.totalOpened }

// State reports the state of the session containing k and whether the
// session is known.
func (t *TCPTracker) State(k FlowKey) (TCPState, bool) {
	s, ok := t.sessions[k.Canonical()]
	if !ok {
		return TCPStateClosed, false
	}
	return s.state, true
}
