// Package packet models network packets, flows, and TCP streams for the
// IDS evaluation testbed. The model is deliberately self-contained (no
// real sockets): headers carry exactly the fields the paper's metrics and
// the detection engines consume — addresses, ports, protocol, TCP flags,
// sizes and payload bytes — plus ground-truth annotations used only by the
// measurement harness, never by detectors.
package packet

import (
	"fmt"
	"time"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// IPv4 builds an Addr from dotted-quad components.
func IPv4(a, b, c, d byte) Addr {
	return Addr(a)<<24 | Addr(b)<<16 | Addr(c)<<8 | Addr(d)
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Octets returns the four dotted-quad components.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// ParseAddr parses a dotted-quad address, inverting Addr.String.
func ParseAddr(s string) (Addr, error) {
	var a Addr
	part, digits := 0, 0
	acc := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if digits == 0 || part > 3 {
				return 0, fmt.Errorf("packet: bad address %q", s)
			}
			a = a<<8 | Addr(acc)
			part++
			acc, digits = 0, 0
			continue
		}
		c := s[i]
		if c < '0' || c > '9' || digits == 3 {
			return 0, fmt.Errorf("packet: bad address %q", s)
		}
		acc = acc*10 + int(c-'0')
		if acc > 255 {
			return 0, fmt.Errorf("packet: bad address %q", s)
		}
		digits++
	}
	if part != 4 {
		return 0, fmt.Errorf("packet: bad address %q", s)
	}
	return a, nil
}

// Proto is an IP protocol number. Only the protocols the testbed generates
// are named; others pass through as raw numbers.
type Proto uint8

const (
	ProtoICMP Proto = 1
	ProtoTCP  Proto = 6
	ProtoUDP  Proto = 17
)

// String names the protocol.
func (p Proto) String() string {
	switch p {
	case ProtoICMP:
		return "ICMP"
	case ProtoTCP:
		return "TCP"
	case ProtoUDP:
		return "UDP"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the TCP control-bit set.
type TCPFlags uint8

// TCP control bits, low bit first as on the wire.
const (
	FIN TCPFlags = 1 << iota
	SYN
	RST
	PSH
	ACK
	URG
)

// Has reports whether all bits in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// String renders the set flags in conventional order, or "." when empty.
func (f TCPFlags) String() string {
	if f == 0 {
		return "."
	}
	names := []struct {
		bit  TCPFlags
		name byte
	}{{SYN, 'S'}, {FIN, 'F'}, {RST, 'R'}, {PSH, 'P'}, {ACK, 'A'}, {URG, 'U'}}
	var out []byte
	for _, n := range names {
		if f.Has(n.bit) {
			out = append(out, n.name)
		}
	}
	return string(out)
}

// ParseTCPFlags parses the conventional-order rendering produced by
// TCPFlags.String ("." for none, otherwise letters from "SFRPAU").
func ParseTCPFlags(s string) (TCPFlags, error) {
	if s == "." || s == "" {
		return 0, nil
	}
	var f TCPFlags
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 'S':
			f |= SYN
		case 'F':
			f |= FIN
		case 'R':
			f |= RST
		case 'P':
			f |= PSH
		case 'A':
			f |= ACK
		case 'U':
			f |= URG
		default:
			return 0, fmt.Errorf("packet: bad TCP flags %q", s)
		}
	}
	return f, nil
}

// FlowKey identifies a unidirectional 5-tuple flow.
type FlowKey struct {
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
}

// Reverse returns the key of the opposite direction of the same
// conversation.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{
		Src: k.Dst, Dst: k.Src,
		SrcPort: k.DstPort, DstPort: k.SrcPort,
		Proto: k.Proto,
	}
}

// Canonical returns a direction-independent key for the conversation: the
// lexicographically smaller of k and k.Reverse(). Both directions of one
// TCP session canonicalize to the same value, which is what load balancers
// need to keep a session on one sensor (Section 2.2 of the paper).
func (k FlowKey) Canonical() FlowKey {
	r := k.Reverse()
	if k.less(r) {
		return k
	}
	return r
}

func (k FlowKey) less(o FlowKey) bool {
	if k.Src != o.Src {
		return k.Src < o.Src
	}
	if k.Dst != o.Dst {
		return k.Dst < o.Dst
	}
	if k.SrcPort != o.SrcPort {
		return k.SrcPort < o.SrcPort
	}
	if k.DstPort != o.DstPort {
		return k.DstPort < o.DstPort
	}
	return k.Proto < o.Proto
}

// String renders the flow as "src:sport > dst:dport/proto".
func (k FlowKey) String() string {
	return fmt.Sprintf("%v:%d > %v:%d/%v", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Hash returns a stable 64-bit hash of the key, suitable for flow-hash load
// balancing. Both directions of a conversation hash identically because the
// key is canonicalized first.
func (k FlowKey) Hash() uint64 {
	c := k.Canonical()
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(c.Src))
	mix(uint64(c.Dst))
	mix(uint64(c.SrcPort)<<16 | uint64(c.DstPort))
	mix(uint64(c.Proto))
	return h
}

// Label carries the ground truth attached by the workload generators. The
// harness uses it to compute the paper's observed false-positive and
// false-negative ratios (Figure 3); detectors must never read it.
type Label struct {
	// Malicious marks traffic generated by an attack scenario.
	Malicious bool
	// AttackID names the attack instance the packet belongs to, so that
	// per-attack detection (rather than per-packet) can be scored.
	AttackID string
	// Technique names the attack class, e.g. "portscan" or "synflood".
	Technique string
}

// Packet is one simulated datagram. Payload is shared, not copied, along
// the delivery path; stages must treat it as read-only.
type Packet struct {
	// Seq is a generator-assigned unique sequence number used for loss
	// accounting.
	Seq uint64
	// Sent is the virtual time the packet left its source NIC.
	Sent time.Duration
	// FlowKey addressing.
	Src, Dst         Addr
	SrcPort, DstPort uint16
	Proto            Proto
	Flags            TCPFlags
	// TTL decrements at each router hop.
	TTL uint8
	// Payload is the application data carried.
	Payload []byte
	// Truth is ground-truth annotation. See Label.
	Truth Label
}

// HeaderBytes is the modeled size of link + IP + transport headers. The
// constant keeps wire-size arithmetic in one place.
const HeaderBytes = 54

// WireLen returns the modeled on-the-wire size in bytes.
func (p *Packet) WireLen() int { return HeaderBytes + len(p.Payload) }

// Key returns the unidirectional flow key of the packet.
func (p *Packet) Key() FlowKey {
	return FlowKey{Src: p.Src, Dst: p.Dst, SrcPort: p.SrcPort, DstPort: p.DstPort, Proto: p.Proto}
}

// Clone returns a deep copy, including the payload. Delivery paths share
// packets; cloning is for stages that must mutate (for example a router
// decrementing TTL on a mirrored copy).
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return &q
}

// String renders a one-line summary.
func (p *Packet) String() string {
	return fmt.Sprintf("#%d %v [%v] len=%d", p.Seq, p.Key(), p.Flags, p.WireLen())
}
