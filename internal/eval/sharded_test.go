package eval

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/products"
)

func scaleTestConfig(shards int) ShardedScaleConfig {
	return ShardedScaleConfig{
		Seed:            1234,
		Segments:        3,
		HostsPerSegment: 4,
		ExternalHosts:   2,
		Shards:          shards,
		Duration:        300 * time.Millisecond,
		BackgroundPps:   800,
		AttackEvery:     40 * time.Millisecond,
	}
}

func renderScale(t *testing.T, spec products.Spec, cfg ShardedScaleConfig) (string, *ShardedScaleResult) {
	t.Helper()
	res, err := RunShardedScale(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%+v\n", scrubWall(*res))
	return buf.String(), res
}

// scrubWall zeroes the machine-dependent fields so the rest of the
// struct can be compared byte for byte.
func scrubWall(r ShardedScaleResult) ShardedScaleResult {
	r.WallSeconds = 0
	r.EventsPerSec = 0
	r.Shards = 0        // differs by construction; everything else must not
	r.Attribution = nil // wall-clock profile, present only when instrumented
	return r
}

// TestShardedScaleDeterminism pins the tentpole invariant: the entire
// result — kernel event counts, per-segment traffic, alerts, detection
// delays — is byte-identical whether 1, 2, 4, or 8 executor goroutines
// advance the domains.
func TestShardedScaleDeterminism(t *testing.T) {
	spec, ok := products.Find("TrueSecure")
	if !ok {
		t.Fatal("TrueSecure spec missing")
	}
	want, res := renderScale(t, spec, scaleTestConfig(1))
	if res.Events == 0 || res.PacketsTapped == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
	for _, shards := range []int{2, 4, 8} {
		got, _ := renderScale(t, spec, scaleTestConfig(shards))
		if got != want {
			t.Errorf("shards=%d diverged from shards=1:\n--- shards=1 ---\n%s--- shards=%d ---\n%s", shards, want, shards, got)
		}
	}
}

// TestShardedScaleObsNeutral pins that instrumenting the run does not
// perturb its deterministic outcome.
func TestShardedScaleObsNeutral(t *testing.T) {
	spec, _ := products.Find("TrueSecure")
	want, _ := renderScale(t, spec, scaleTestConfig(2))
	cfg := scaleTestConfig(2)
	cfg.Obs = obs.NewRegistry()
	got, _ := renderScale(t, spec, cfg)
	if got != want {
		t.Error("telemetry-on run diverged from telemetry-off")
	}
	snap := cfg.Obs.Snapshot()
	found := false
	for _, c := range snap.Counters {
		if c.Name == "simtime.shard.windows" && c.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Error("coordinator instruments missing from registry")
	}
}

// TestShardedScaleDetection sanity-checks that a signature product
// actually catches the injected attacks at scale.
func TestShardedScaleDetection(t *testing.T) {
	spec, _ := products.Find("TrueSecure")
	_, res := renderScale(t, spec, scaleTestConfig(2))
	if res.AttacksInjected == 0 {
		t.Fatal("no attacks injected")
	}
	if res.AttacksDetected == 0 {
		t.Fatalf("TrueSecure detected 0/%d attacks", res.AttacksInjected)
	}
	if res.DelayMax <= 0 {
		t.Fatalf("detected attacks but DelayMax = %v", res.DelayMax)
	}
	if res.AlertsSeen == 0 || res.Incidents == 0 {
		t.Fatalf("alert pipeline silent: alerts=%d incidents=%d", res.AlertsSeen, res.Incidents)
	}
}

// TestShardedScaleCancellation checks a cancelled context halts the run
// with an error instead of completing.
func TestShardedScaleCancellation(t *testing.T) {
	spec, _ := products.Find("TrueSecure")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunShardedScale(ctx, spec, scaleTestConfig(2)); err == nil {
		t.Fatal("cancelled run returned no error")
	}
}

// benchScaleConfig is the ≥10k-host LargeConfig the throughput
// benchmarks and BENCH_sim.json run against.
func benchScaleConfig(shards int) ShardedScaleConfig {
	return ShardedScaleConfig{
		Seed:            99,
		Segments:        32,
		HostsPerSegment: 320, // 10240 hosts
		ExternalHosts:   8,
		Shards:          shards,
		Duration:        250 * time.Millisecond,
		BackgroundPps:   1200,
		AttackEvery:     25 * time.Millisecond,
	}
}

func benchShardedScale(b *testing.B, shards int) {
	spec, ok := products.Find("TrueSecure")
	if !ok {
		b.Fatal("TrueSecure spec missing")
	}
	b.ReportAllocs()
	var events uint64
	var wall float64
	for i := 0; i < b.N; i++ {
		res, err := RunShardedScale(context.Background(), spec, benchScaleConfig(shards))
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
		wall += res.WallSeconds
	}
	if wall > 0 {
		b.ReportMetric(float64(events)/wall, "events/sec")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func BenchmarkShardedScaleShards1(b *testing.B) { benchShardedScale(b, 1) }
func BenchmarkShardedScaleShards2(b *testing.B) { benchShardedScale(b, 2) }
func BenchmarkShardedScaleShards4(b *testing.B) { benchShardedScale(b, 4) }
func BenchmarkShardedScaleShards8(b *testing.B) { benchShardedScale(b, 8) }
