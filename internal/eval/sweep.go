package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/products"
)

// SweepPoint is one sensitivity setting's error rates — one x-position on
// the paper's Figure 4.
type SweepPoint struct {
	Sensitivity float64
	// TypeI is the false-positive error percentage: false alarms per
	// transaction × 100.
	TypeI float64
	// TypeII is the false-negative error percentage: missed attacks per
	// actual attack × 100.
	TypeII float64
	// Raw retains the full run result.
	Raw *AccuracyResult
}

// SweepResult is the Figure-4 reproduction: both error curves and the
// equal error rate.
type SweepResult struct {
	Product string
	Points  []SweepPoint
	// EER is the interpolated sensitivity where the curves cross.
	EER float64
	// EERError is the common error percentage at the crossover.
	EERError float64
	// EERValid is false when the curves never cross in the swept range.
	EERValid bool
}

// SweepOptions sizes the experiment.
type SweepOptions struct {
	Seed     int64
	Points   int           // default 6
	TrainFor time.Duration // default 15s
	RunFor   time.Duration // default 30s
	Pps      float64       // default 400
	Strength attack.Intensity
	// Workers bounds the sweep's worker pool: 0 sizes it to the machine,
	// 1 forces the serial path (the determinism reference).
	Workers int
	// Obs, when non-nil, instruments every point's testbed with one
	// shared registry (counters aggregate across points). Observation
	// only: the sweep is bit-identical with or without it.
	Obs *obs.Registry
}

func (o *SweepOptions) applyDefaults() {
	if o.Points == 0 {
		o.Points = 6
	}
	if o.TrainFor == 0 {
		o.TrainFor = 15 * time.Second
	}
	if o.RunFor == 0 {
		o.RunFor = 30 * time.Second
	}
	if o.Pps == 0 {
		o.Pps = 400
	}
	if o.Strength == 0 {
		o.Strength = 1
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
}

// SensitivitySweep reruns the accuracy experiment across the sensitivity
// range, producing the Type I / Type II error curves of Figure 4. Each
// point uses a fresh testbed with the same seed, so the only varying
// factor is the sensitivity knob. Points are independent simulations, so
// they fan out across the shared bounded runner; results are assembled
// in index order, making the parallel sweep bit-identical to a serial
// one.
//
// Cancelling ctx halts in-flight points at the kernel's interrupt
// stride and skips unstarted ones. On cancellation the partial result —
// completed points only, no EER — is returned alongside the error so
// callers can report how far the sweep got; any other failure cancels
// the remaining points, surfaces the lowest-indexed point's error, and
// returns no result.
func SensitivitySweep(ctx context.Context, spec products.Spec, opts SweepOptions) (*SweepResult, error) {
	opts.applyDefaults()
	if opts.Points < 2 {
		return nil, fmt.Errorf("eval: sweep needs at least 2 points, got %d", opts.Points)
	}
	points := make([]SweepPoint, opts.Points)
	err := par.ForEach(ctx, opts.Points, opts.Workers, func(ctx context.Context, i int) error {
		p, err := SweepPointAt(ctx, spec, opts, i)
		if err != nil {
			return err
		}
		points[i] = p
		return nil
	})
	if err != nil {
		if isCancel(err) {
			var done []SweepPoint
			for _, p := range points {
				if p.Raw != nil {
					done = append(done, p)
				}
			}
			return &SweepResult{Product: spec.Name, Points: done}, err
		}
		return nil, err
	}
	return AssembleSweep(spec.Name, points), nil
}

// SweepPointAt runs the accuracy experiment behind the i-th sweep point
// (sensitivity i/(Points-1)) on a fresh testbed. It is the unit of work
// a campaign journals and resumes individually: the point produced here
// is bit-identical to the same index of a full SensitivitySweep with
// the same options.
func SweepPointAt(ctx context.Context, spec products.Spec, opts SweepOptions, i int) (SweepPoint, error) {
	opts.applyDefaults()
	if i < 0 || i >= opts.Points {
		return SweepPoint{}, fmt.Errorf("eval: sweep point %d out of range [0,%d)", i, opts.Points)
	}
	s := float64(i) / float64(opts.Points-1)
	tb, err := NewTestbed(spec, TestbedConfig{
		Seed: opts.Seed, TrainFor: opts.TrainFor, BackgroundPps: opts.Pps,
		Obs: opts.Obs,
	})
	if err != nil {
		return SweepPoint{}, err
	}
	tb.Bind(ctx)
	res, err := RunAccuracy(tb, s, opts.RunFor, opts.Strength)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Sensitivity: s,
		TypeI:       res.FalsePositiveRatio * 100,
		TypeII:      res.MissRate * 100,
		Raw:         res,
	}, nil
}

// AssembleSweep builds a SweepResult from independently produced points
// (a campaign's per-point experiments), computing the equal error rate
// exactly as SensitivitySweep would.
func AssembleSweep(product string, points []SweepPoint) *SweepResult {
	out := &SweepResult{Product: product, Points: points}
	out.EER, out.EERError, out.EERValid = equalErrorRate(points)
	return out
}

// equalErrorRate finds the crossover of the Type I and Type II curves by
// linear interpolation between adjacent sweep points.
func equalErrorRate(points []SweepPoint) (sens, errPct float64, ok bool) {
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		da := a.TypeII - a.TypeI
		db := b.TypeII - b.TypeI
		if da == 0 {
			return a.Sensitivity, a.TypeI, true
		}
		if da*db < 0 {
			// Sign change: interpolate the zero of (TypeII - TypeI).
			t := da / (da - db)
			s := a.Sensitivity + t*(b.Sensitivity-a.Sensitivity)
			e := a.TypeI + t*(b.TypeI-a.TypeI)
			return s, e, true
		}
	}
	if n := len(points); n > 0 && points[n-1].TypeII == points[n-1].TypeI {
		return points[n-1].Sensitivity, points[n-1].TypeI, true
	}
	return 0, 0, false
}

// SensitivityEffect summarizes whether the knob actually moves the error
// trade-off — the evidence behind the Adjustable Sensitivity score.
type SensitivityEffect struct {
	// TypeIIRange is max−min Type II across the sweep.
	TypeIIRange float64
	// TypeIRange is max−min Type I across the sweep.
	TypeIRange float64
	// TradeoffDirectionOK means Type II at max sensitivity <= at min,
	// and Type I at max >= at min (the expected directions).
	TradeoffDirectionOK bool
}

// Effect computes the SensitivityEffect of a sweep.
func (s *SweepResult) Effect() SensitivityEffect {
	var e SensitivityEffect
	if len(s.Points) < 2 {
		return e
	}
	minI, maxI := s.Points[0].TypeI, s.Points[0].TypeI
	minII, maxII := s.Points[0].TypeII, s.Points[0].TypeII
	for _, p := range s.Points {
		if p.TypeI < minI {
			minI = p.TypeI
		}
		if p.TypeI > maxI {
			maxI = p.TypeI
		}
		if p.TypeII < minII {
			minII = p.TypeII
		}
		if p.TypeII > maxII {
			maxII = p.TypeII
		}
	}
	e.TypeIRange = maxI - minI
	e.TypeIIRange = maxII - minII
	first, last := s.Points[0], s.Points[len(s.Points)-1]
	e.TradeoffDirectionOK = last.TypeII <= first.TypeII && last.TypeI >= first.TypeI
	return e
}

// Publish writes the sweep's error curves into reg as "sweep.*" gauges
// — per-point Type I/II error rates plus the EER crossover — so a live
// /metrics scrape or a JSONL export carries the Figure-4 evidence.
// Rates are in parts per million to stay integral. No-op on a nil
// registry.
func (s *SweepResult) Publish(reg *obs.Registry) {
	if s == nil || reg == nil {
		return
	}
	for i, p := range s.Points {
		prefix := fmt.Sprintf("sweep.p%02d.", i)
		reg.Gauge(prefix + "sensitivity_ppm").Set(int64(p.Sensitivity * 1e6))
		reg.Gauge(prefix + "type_i_ppm").Set(int64(p.TypeI * 1e4))
		reg.Gauge(prefix + "type_ii_ppm").Set(int64(p.TypeII * 1e4))
	}
	if s.EERValid {
		reg.Gauge("sweep.eer_sensitivity_ppm").Set(int64(s.EER * 1e6))
		reg.Gauge("sweep.eer_error_ppm").Set(int64(s.EERError * 1e4))
	}
	reg.Gauge("sweep.points").Set(int64(len(s.Points)))
}
