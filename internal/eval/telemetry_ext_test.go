package eval_test

// External-package tests for the telemetry subsystem's two cross-layer
// contracts, which need internal/report on top of internal/eval (report
// imports eval, so these cannot live in package eval):
//
//  1. Determinism guard: a full evaluation's rendered output is
//     byte-identical with telemetry collection on or off. Telemetry
//     observes; it never perturbs.
//  2. Replay output: the streaming trace path (whose stage timings now
//     ride obs spans) renders the same stdout report, byte for byte, as
//     the in-memory path.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// renderField runs a quick evaluation of the given products and renders
// every report surface a user sees on stdout into one buffer.
func renderField(t *testing.T, specs []products.Spec, opts eval.Options) (string, []*eval.ProductEvaluation) {
	t.Helper()
	reg := core.StandardRegistry()
	evs, err := eval.EvaluateAll(context.Background(), specs, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	cards := make([]*core.Scorecard, len(evs))
	for i, ev := range evs {
		if err := report.EvaluationReport(&buf, ev); err != nil {
			t.Fatal(err)
		}
		cards[i] = ev.Card
	}
	for _, c := range core.Classes {
		if err := report.ScoreMatrix(&buf, reg, c, cards, true); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String(), evs
}

func TestTelemetryDeterminism(t *testing.T) {
	// The determinism guard: everything printed to stdout — scorecards,
	// evidence notes, matrices — must be byte-identical whether the
	// telemetry registry was wired through the testbeds or not.
	specs := []products.Spec{products.TrueSecure(), products.NetRecorder()}
	off, _ := renderField(t, specs, eval.Options{Seed: 11, Quick: true, Telemetry: false})
	on, evs := renderField(t, specs, eval.Options{Seed: 11, Quick: true, Telemetry: true})
	if off != on {
		t.Fatalf("telemetry perturbed the evaluation:\n--- off ---\n%s\n--- on ---\n%s", off, on)
	}

	// With collection on, each evaluation must carry a snapshot covering
	// the class-3 scorecard quantities and the component telemetry.
	for _, ev := range evs {
		if ev.Snapshot == nil {
			t.Fatalf("%s: telemetry on but no snapshot", ev.Spec.Name)
		}
		for _, g := range []string{
			"scorecard.detection_delay_p95_ns",
			"scorecard.drop_ratio_ppm",
			"scorecard.scan_throughput_pps",
			"scorecard.operator_notifications",
			"scorecard.induced_latency_p95_ns",
		} {
			if _, ok := ev.Snapshot.Gauge(g); !ok {
				t.Errorf("%s: snapshot missing %s", ev.Spec.Name, g)
			}
		}
		if ev.Snapshot.Hist("eval.path_latency.baseline_ns") == nil {
			t.Errorf("%s: snapshot missing latency probe histogram", ev.Spec.Name)
		}
		if _, ok := ev.Snapshot.Counter("accuracy.ids.ingested"); !ok {
			t.Errorf("%s: snapshot missing accuracy-run component telemetry", ev.Spec.Name)
		}
		if ev.Telemetry == nil || ev.Telemetry.Ingested == 0 {
			t.Errorf("%s: telemetry summary empty", ev.Spec.Name)
		}
		// Percentile fields must agree between result structs and the
		// published gauges — one estimator, not two.
		if g, _ := ev.Snapshot.Gauge("scorecard.detection_delay_p95_ns"); g.Value != int64(ev.Accuracy.DelayP95) {
			t.Errorf("%s: scorecard gauge %d != result p95 %d", ev.Spec.Name, g.Value, ev.Accuracy.DelayP95)
		}
	}

	// The telemetry summary must also be derived when collection is off
	// (it reads only deterministic result fields).
	offNone, evsOff := renderField(t, specs, eval.Options{Seed: 11, Quick: true})
	if offNone != off {
		t.Fatal("repeat evaluation not deterministic")
	}
	for _, ev := range evsOff {
		if ev.Telemetry == nil {
			t.Fatalf("%s: telemetry summary missing with collection off", ev.Spec.Name)
		}
		if ev.Snapshot != nil {
			t.Fatalf("%s: snapshot assembled without opting in", ev.Spec.Name)
		}
	}
}

// buildStreamTrace generates a small labeled trace and returns it both
// in-memory and IDT2-encoded.
func buildStreamTrace(t *testing.T, seed int64) (*trace.Trace, []byte) {
	t.Helper()
	sim := simtime.New(seed)
	rec := trace.NewRecorder(sim, "ecommerce-edge")
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
		Cluster: []packet.Addr{
			packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3),
		},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, seq, rec.Emit)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(40)
	ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Eps: eps, Emit: rec.Emit, Gen: gen}
	camp := attack.NewCampaign(ctx)
	if err := camp.SpreadAcross(2*time.Second, 10*time.Second, []attack.Scenario{
		attack.Exploit{Count: 3}, attack.BruteForce{Attempts: 20},
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(15 * time.Second)
	gen.Stop()
	sim.Run()
	rec.SetIncidents(camp.Incidents())
	tr := rec.Trace()
	var enc bytes.Buffer
	if err := tr.WriteStream(&enc); err != nil {
		t.Fatal(err)
	}
	return tr, enc.Bytes()
}

// renderAccuracy renders the replay CLI's stdout report surface.
func renderAccuracy(t *testing.T, res *eval.AccuracyResult) string {
	t.Helper()
	var buf bytes.Buffer
	if err := report.AccuracySummary(&buf, res); err != nil {
		t.Fatal(err)
	}
	if err := report.IntentProfiles(&buf, res.Profiles); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestReplayStdoutByteIdenticalAcrossPaths(t *testing.T) {
	// The replay CLI's report must render byte-identically from the
	// in-memory path (no telemetry) and the streaming path (obs spans,
	// decoder counters, full component instrumentation).
	tr, encoded := buildStreamTrace(t, 23)
	spec := products.TrueSecure()

	want, err := eval.RunTraceAccuracy(context.Background(), spec, tr, 0.6, 6*time.Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(bytes.NewReader(encoded))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	got, err := eval.RunTraceAccuracyStream(context.Background(), spec, rd, 0.6, 6*time.Second, 11, reg)
	if err != nil {
		t.Fatal(err)
	}

	if w, g := renderAccuracy(t, want), renderAccuracy(t, got); w != g {
		t.Fatalf("replay stdout differs between paths:\n--- in-memory ---\n%s\n--- streaming ---\n%s", w, g)
	}
	// And the instrumented run must actually have produced telemetry.
	if chunks, _ := reg.Snapshot().Counter("trace.decoder.chunks"); chunks == 0 {
		t.Fatal("instrumented streaming run recorded no decoder chunks")
	}
	if d, ok := reg.SpanDur("replay.replay"); !ok || d <= 0 {
		t.Fatalf("replay stage span missing or empty (%v, %v)", d, ok)
	}
}
