package eval

import (
	"time"

	"repro/internal/ids"
	"repro/internal/operator"
	"repro/internal/products"
	"repro/internal/simtime"
)

// HumanResult is the human-dimension experiment outcome (the paper's
// future-work extension): how a product's notification stream lands on a
// single watch-stander.
type HumanResult struct {
	Product string
	// Notifications the monitor issued during the run.
	Notifications int
	// Report summarizes operator outcomes.
	Report operator.Report
	// ActualIncidents is the ground-truth attack count.
	ActualIncidents int
	// WireDetected is how many the IDS detected at the wire.
	WireDetected int
	// HumanActedOn is how many ground-truth incidents a notification was
	// actually acted on for — the end-to-end detection rate including
	// the human.
	HumanActedOn int
}

// MeasureHumanDimension runs the standard accuracy campaign, then plays
// the monitor's notification log against the watch-stander model. A
// noisy product can detect everything at the wire and still lose at the
// human: floods of marginal notifications bury the real ones.
func MeasureHumanDimension(spec products.Spec, sensitivity float64, seed int64) (*HumanResult, error) {
	tb, err := NewTestbed(spec, TestbedConfig{Seed: seed, TrainFor: 8 * time.Second, BackgroundPps: 250})
	if err != nil {
		return nil, err
	}
	res, err := RunAccuracy(tb, sensitivity, 20*time.Second, 0.5)
	if err != nil {
		return nil, err
	}
	notifications := tb.IDS.Monitor().Notifications

	// Replay the notification log on a fresh clock for the operator.
	sim := simtime.New(seed)
	op := operator.New(sim, operator.Config{})
	if err := op.Feed(notifications); err != nil {
		return nil, err
	}
	sim.Run()

	out := &HumanResult{
		Product:         spec.Name,
		Notifications:   len(notifications),
		Report:          op.Report(),
		ActualIncidents: res.ActualIncidents,
		WireDetected:    res.DetectedIncidents,
	}
	// Reported incidents the operator acted on (notification handlings
	// reference the monitor's incident pointers directly).
	acted := make(map[*ids.ReportedIncident]bool)
	for _, h := range op.Handled {
		if h.Outcome == operator.ActedOn {
			acted[h.Notification.Incident] = true
		}
	}
	for _, inc := range res.TruthIncidents {
		for _, rep := range tb.IDS.Monitor().Incidents {
			if acted[rep] && matches(rep, inc) {
				out.HumanActedOn++
				break
			}
		}
	}
	return out, nil
}
