package eval_test

// External-package tests for the fault-injection harness's cross-layer
// contracts (report imports eval, so byte-level rendering comparisons
// cannot live in package eval):
//
//  1. No-faults determinism guard: RunFaultScenario with an empty
//     scenario renders byte-identically to RunAccuracy — the fault
//     harness compiled in but unconfigured changes nothing.
//  2. Seeded reproducibility: the same scenario, seed, and severity grid
//     produce a byte-identical fault-sweep report across two runs.
//  3. The shipped span-degrade example traces a monotone degradation
//     curve, and pipeline faults never lose alerts silently.

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/products"
	"repro/internal/report"
)

func quickFaultOpts() eval.FaultSweepOptions {
	return eval.FaultSweepOptions{
		Seed: 11, Points: 3, TrainFor: 8 * time.Second,
		AttackFor: 20 * time.Second, Pps: 300,
	}
}

func quickTestbedCfg() eval.TestbedConfig {
	return eval.TestbedConfig{Seed: 11, TrainFor: 8 * time.Second, BackgroundPps: 300}
}

// renderFaultAccuracy renders every accuracy quantity the user sees plus the
// raw pipeline counters, so a byte comparison catches any perturbation.
func renderFaultAccuracy(t *testing.T, acc *eval.AccuracyResult) string {
	t.Helper()
	var buf bytes.Buffer
	if err := report.AccuracySummary(&buf, acc); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&buf, "raw: %d %d %d %d %d %d %d %d %v %d %d\n",
		acc.IngestedPkts, acc.ProcessedPkts, acc.SensorDrops, acc.TapDrops,
		acc.SensorFailures, acc.Notifications, acc.ReportedIncidents,
		acc.FalseAlarms, acc.SensorBusy, acc.StorageBytes, acc.IngestedBytes)
	return buf.String()
}

func TestNoFaultDeterminism(t *testing.T) {
	// The guard: an empty scenario takes the exact RunAccuracy code path.
	// Everything observable — the rendered summary and the raw pipeline
	// counters — must be byte-identical with the harness in the loop.
	spec := products.TrueSecure()

	tbA, err := eval.NewTestbed(spec, quickTestbedCfg())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eval.RunAccuracy(tbA, 0.5, 20*time.Second, 1)
	if err != nil {
		t.Fatal(err)
	}

	tbB, err := eval.NewTestbed(spec, quickTestbedCfg())
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := eval.RunFaultScenario(tbB, &faults.Scenario{Name: "baseline"}, 0.5, 20*time.Second, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := renderFaultAccuracy(t, plain), renderFaultAccuracy(t, faulted.Accuracy); a != b {
		t.Fatalf("empty scenario perturbed the run:\n--- RunAccuracy ---\n%s\n--- RunFaultScenario(empty) ---\n%s", a, b)
	}
	if len(faulted.Applied) != 0 {
		t.Fatalf("empty scenario applied %d faults", len(faulted.Applied))
	}
	if faulted.AlertsLost != 0 || faulted.AlertsDropped != 0 || faulted.SpoolDelivered != 0 ||
		faulted.MgmtDropped != 0 || faulted.SensorDowntime != 0 {
		t.Fatalf("empty scenario accumulated fault accounting: %+v", faulted)
	}
	if tbB.IDS.ResilienceEnabled() {
		t.Fatal("empty scenario switched the resilience layer on")
	}
}

func TestFaultSweepReproducible(t *testing.T) {
	// Identical seed + scenario + severity grid must produce a
	// byte-identical report across two full sweeps.
	sc, err := faults.Load("../../examples/faults/pipeline-outage.json")
	if err != nil {
		t.Fatal(err)
	}
	spec := products.TrueSecure()
	render := func() string {
		sw, err := eval.FaultSweep(context.Background(), spec, sc, quickFaultOpts())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := report.FaultSweepReport(&buf, sw); err != nil {
			t.Fatal(err)
		}
		if err := report.FaultSweepCSV(&buf, sw); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first, second := render(), render()
	if first != second {
		t.Fatalf("fault sweep not reproducible:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

func TestFaultSweepMonotoneDegradation(t *testing.T) {
	// The shipped span-degrade scenario must trace a weakly monotone
	// degradation curve: detection never improves as severity rises, and
	// full severity is strictly worse than baseline.
	sc, err := faults.Load("../../examples/faults/span-degrade.json")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := eval.FaultSweep(context.Background(), products.TrueSecure(), sc, quickFaultOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sw.Points); i++ {
		prev, cur := sw.Points[i-1].Accuracy.DetectionRate, sw.Points[i].Accuracy.DetectionRate
		if cur > prev {
			t.Fatalf("detection improved with severity: %.3f@%.2f -> %.3f@%.2f",
				prev, sw.Points[i-1].Severity, cur, sw.Points[i].Severity)
		}
	}
	base, worst := sw.BaselineDetection(), sw.Points[len(sw.Points)-1].Accuracy.DetectionRate
	if base <= 0 {
		t.Fatal("baseline detected nothing; scenario cannot show degradation")
	}
	if worst >= base {
		t.Fatalf("full severity (%.3f) not worse than baseline (%.3f)", worst, base)
	}
	if sw.Retention() >= 1 {
		t.Fatalf("retention %.3f, want < 1", sw.Retention())
	}
}

func TestAlertLossAccountedWithoutResilience(t *testing.T) {
	// With no resilience layer, a severed alert path must account every
	// lost alert — the pipeline never loses alerts silently.
	sc := &faults.Scenario{
		Name: "severed",
		Events: []faults.Event{
			{At: faults.Duration(2 * time.Second), Duration: faults.Duration(10 * time.Second), Kind: faults.KindAlertLoss},
		},
	}
	tb, err := eval.NewTestbed(products.TrueSecure(), quickTestbedCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := eval.RunFaultScenario(tb, sc, 0.5, 20*time.Second, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.AlertsLost == 0 {
		t.Fatal("10s alert-loss window lost nothing — fault not reaching the pipeline")
	}
	if res.SpoolDelivered != 0 || res.Resilience.Spooled != 0 {
		t.Fatalf("resilience-off run spooled alerts: %+v", res.Resilience)
	}
}
