package eval

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/traffic"
)

// buildTrace generates a small labeled trace for replay tests.
func buildTrace(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	sim := simtime.New(seed)
	rec := trace.NewRecorder(sim, "ecommerce-edge")
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
		Cluster: []packet.Addr{
			packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3),
		},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, seq, rec.Emit)
	if err != nil {
		t.Fatal(err)
	}
	gen.Start(40)
	ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Eps: eps, Emit: rec.Emit, Gen: gen}
	camp := attack.NewCampaign(ctx)
	if err := camp.SpreadAcross(2*time.Second, 10*time.Second, []attack.Scenario{
		attack.Exploit{Count: 3}, attack.BruteForce{Attempts: 20},
	}); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(15 * time.Second)
	gen.Stop()
	sim.Run()
	rec.SetIncidents(camp.Incidents())
	return rec.Trace()
}

func TestRunTraceAccuracy(t *testing.T) {
	tr := buildTrace(t, 23)
	res, err := RunTraceAccuracy(context.Background(), products.TrueSecure(), tr, 0.6, 6*time.Second, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActualIncidents != 2 {
		t.Fatalf("actual incidents = %d", res.ActualIncidents)
	}
	if res.DetectedIncidents == 0 {
		t.Fatal("replay detected nothing")
	}
	if res.Transactions <= 2 {
		t.Fatalf("transactions = %d; conversation counting broken", res.Transactions)
	}
	if len(res.Profiles) == 0 {
		t.Fatal("no intent profiles from replay")
	}
	// The exploit must be caught by a signature product on replay.
	if !res.ByTechnique[attack.TechExploit] {
		t.Fatal("exploit missed on replay")
	}
}

func TestRunTraceAccuracyDeterministic(t *testing.T) {
	tr := buildTrace(t, 23)
	run := func() (int, int) {
		res, err := RunTraceAccuracy(context.Background(), products.NetRecorder(), tr, 0.6, 4*time.Second, 11)
		if err != nil {
			t.Fatal(err)
		}
		return res.DetectedIncidents, res.FalseAlarms
	}
	d1, f1 := run()
	d2, f2 := run()
	if d1 != d2 || f1 != f2 {
		t.Fatalf("replay nondeterministic: (%d,%d) vs (%d,%d)", d1, f1, d2, f2)
	}
}

func TestRunTraceAccuracyRejectsEmpty(t *testing.T) {
	if _, err := RunTraceAccuracy(context.Background(), products.NetRecorder(), &trace.Trace{}, 0.5, time.Second, 1); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestTraceRoundTripThroughReplayMatchesLive(t *testing.T) {
	// A trace recorded and replayed must produce detection outcomes for
	// the same techniques as the live generation path (same engines, same
	// content).
	tr := buildTrace(t, 31)
	res, err := RunTraceAccuracy(context.Background(), products.TrueSecure(), tr, 0.7, 6*time.Second, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, tech := range []string{attack.TechExploit, attack.TechBruteForce} {
		if !res.ByTechnique[tech] {
			t.Fatalf("replay lost detectability of %s", tech)
		}
	}
}

func TestStreamAccuracyMatchesInMemory(t *testing.T) {
	// The streaming chunked replay path must reproduce the in-memory
	// path's results exactly — rendered reports and all — for the same
	// trace, product, and seeds.
	tr := buildTrace(t, 23)
	var enc bytes.Buffer
	if err := tr.WriteStream(&enc); err != nil {
		t.Fatal(err)
	}
	for _, spec := range []products.Spec{products.TrueSecure(), products.NetRecorder()} {
		want, err := RunTraceAccuracy(context.Background(), spec, tr, 0.6, 6*time.Second, 11)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := trace.NewReader(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		got, err := RunTraceAccuracyStream(context.Background(), spec, rd, 0.6, 6*time.Second, 11, reg)
		if err != nil {
			t.Fatal(err)
		}
		if chunks, _ := reg.Snapshot().Counter("trace.decoder.chunks"); chunks == 0 {
			t.Fatal("streaming run decoded no chunks")
		}
		for _, name := range []string{"replay.setup", "replay.train", "replay.replay", "replay.score"} {
			if _, ok := reg.SpanDur(name); !ok {
				t.Fatalf("stage span %q not recorded", name)
			}
		}
		// Field-for-field equality: every count, ratio, technique flag,
		// and intent profile must match, so any downstream report renders
		// byte-identically from either path.
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: streaming result differs from in-memory:\nin-memory: %+v\nstreaming: %+v",
				spec.Name, want, got)
		}
	}
}

func TestStreamAccuracyRequiresIndex(t *testing.T) {
	tr := buildTrace(t, 23)
	var enc bytes.Buffer
	if err := tr.WriteStream(&enc); err != nil {
		t.Fatal(err)
	}
	// A non-seekable source has no footer index up front; the streaming
	// runner must refuse it rather than silently degrade.
	rd, err := trace.NewReader(io.MultiReader(bytes.NewReader(enc.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTraceAccuracyStream(context.Background(), products.TrueSecure(), rd, 0.6, time.Second, 11, nil); err == nil {
		t.Fatal("unindexed source accepted")
	}
}
