package eval

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/detect"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/par"
	"repro/internal/products"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// ShardedScaleConfig parameterizes RunShardedScale: one large segmented
// topology partitioned across conservative event domains, with a
// per-segment sensor pipeline tapping each leaf's SPAN port.
type ShardedScaleConfig struct {
	Seed int64
	// Segments is the leaf-switch count (default 8); the coordinator
	// gets Segments+1 domains.
	Segments int
	// HostsPerSegment (default 40).
	HostsPerSegment int
	// ExternalHosts (default 4).
	ExternalHosts int
	// Shards is the executor-goroutine count (default 1). It scales
	// wall-clock only: results are byte-identical for every value.
	Shards int
	// Duration is the scored detection phase; a Duration/5 clean
	// training phase precedes it (default 5s).
	Duration time.Duration
	// BackgroundPps is the offered background load per segment
	// (default 4000).
	BackgroundPps float64
	// CrossRatio is the fraction of background flows that leave their
	// segment over the distribution switch (default 0.15).
	CrossRatio float64
	// AttackEvery spaces attack injections during the detection phase
	// (default Duration/10, i.e. 500ms at the default duration); attacks
	// rotate round-robin across segments.
	AttackEvery time.Duration
	// Obs, when non-nil, instruments the coordinator and per-segment
	// pipelines. Telemetry never perturbs results.
	Obs *obs.Registry
}

func (c *ShardedScaleConfig) applyDefaults() {
	if c.Segments <= 0 {
		c.Segments = 8
	}
	if c.HostsPerSegment <= 0 {
		c.HostsPerSegment = 40
	}
	if c.ExternalHosts <= 0 {
		c.ExternalHosts = 4
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.BackgroundPps <= 0 {
		c.BackgroundPps = 4000
	}
	if c.CrossRatio < 0 {
		c.CrossRatio = 0
	}
	if c.CrossRatio == 0 {
		c.CrossRatio = 0.15
	}
	if c.AttackEvery <= 0 {
		// One attack per tenth of the scored phase (500ms at the default
		// 5s), so shortened smoke runs still exercise detection.
		c.AttackEvery = c.Duration / 10
	}
}

// SegmentScaleStats is one segment's deterministic outcome.
type SegmentScaleStats struct {
	Tapped          uint64
	MirrorDrops     uint64
	SensorDrops     uint64
	AlertsSeen      uint64
	Incidents       int
	AttacksInjected int
	AttacksDetected int
}

// ShardedScaleResult is the outcome of one at-scale run. Every field
// except the Wall*/EventsPerSec pair is deterministic — identical for
// any shard count at the same seed — and only deterministic fields are
// rendered by report.ShardedScaleReport.
type ShardedScaleResult struct {
	Product         string
	Segments        int
	HostsPerSegment int
	Hosts           int
	Shards          int
	TrainFor        time.Duration
	Duration        time.Duration

	Events        uint64
	Windows       uint64
	CrossMessages uint64

	PacketsSent   uint64
	PacketsTapped uint64
	MirrorDrops   uint64
	SensorDrops   uint64
	AlertsSeen    uint64
	Incidents     int
	Notifications int

	AttacksInjected int
	AttacksDetected int
	DelayP50        time.Duration
	DelayP95        time.Duration
	DelayMax        time.Duration

	PerSegment []SegmentScaleStats

	// Wall-clock measurements; machine-dependent, excluded from the
	// deterministic report (stderr/bench material only).
	WallSeconds  float64
	EventsPerSec float64

	// Attribution is the per-domain wall-clock profile (busy/blocked
	// executor time per event domain), populated only when cfg.Obs was
	// set. Machine-dependent like WallSeconds: rendered by
	// report.ShardedScaleAttribution to stderr, never to stdout.
	Attribution []simtime.DomainAttribution
}

// segPipeline is one segment's domain-local sensing stack.
type segPipeline struct {
	engine   detect.Engine
	sensor   *ids.Sensor
	analyzer *ids.Analyzer
	monitor  *ids.Monitor
	sink     *netsim.Sink
	mirror   *netsim.Link

	sent       uint64
	injects    []simtime.Time // attack inject times, appended by domain 0
	detections []simtime.Time // alert times on the attack port, appended by this segment
}

// attackPayload carries two standard signature triggers, so any
// signature-class engine alerts on it; anomaly engines see an unknown
// port and an untrained payload shape.
var attackPayload = []byte("GET /cgi-bin/phf?Qalias=x%0a/bin/cat%20/etc/passwd HTTP/1.0\r\nHost: victim\r\n\r\n")

// RunShardedScale runs the large-topology experiment for one product:
// build the LargeTopology over Segments+1 domains, tap every leaf's SPAN
// into a domain-local engine+sensor+analyzer pipeline, drive per-segment
// background traffic plus external traffic and periodic attacks, and
// score detection. cfg.Shards picks how many cores execute the domains;
// the result's deterministic fields do not depend on it.
func RunShardedScale(ctx context.Context, spec products.Spec, cfg ShardedScaleConfig) (*ShardedScaleResult, error) {
	cfg.applyDefaults()
	ss, err := simtime.NewSharded(cfg.Seed, cfg.Segments+1)
	if err != nil {
		return nil, err
	}
	defer ss.Close()
	ss.SetWorkers(cfg.Shards)
	ss.Instrument(cfg.Obs)
	top, err := netsim.BuildLargeTopology(ss, netsim.LargeConfig{
		Segments:        cfg.Segments,
		HostsPerSegment: cfg.HostsPerSegment,
		ExternalHosts:   cfg.ExternalHosts,
	})
	if err != nil {
		return nil, err
	}

	trainFor := cfg.Duration / 5
	horizon := simtime.Time(trainFor + cfg.Duration)
	trainUntil := simtime.Time(trainFor)

	// IDS architecture knobs from the product spec, with the assembly
	// defaults the spec itself relies on.
	queue := spec.IDS.SensorQueue
	if queue <= 0 {
		queue = 2048
	}
	window := spec.IDS.CorrelationWindow
	if window <= 0 {
		window = 5 * time.Second
	}
	threshold := spec.IDS.NotifyThreshold
	if threshold <= 0 {
		threshold = 0.5
	}
	storage := spec.IDS.StorageBytesPerAlert
	if storage <= 0 {
		storage = 512
	}

	segs := make([]*segPipeline, cfg.Segments)
	for s := 0; s < cfg.Segments; s++ {
		s := s
		segSim := top.SegmentSim(s)
		sp := &segPipeline{engine: spec.IDS.Engine()}
		sp.monitor = ids.NewMonitor(segSim, threshold)
		sp.analyzer = ids.NewAnalyzer(segSim, s, window, storage, sp.monitor)
		sp.sensor = ids.NewSensor(segSim, s, sp.engine, queue, spec.IDS.FailureMode, 0, 0)
		sp.sensor.SetDeliver(func(alerts []detect.Alert) {
			for _, a := range alerts {
				if a.Flow.DstPort == attackPort {
					sp.detections = append(sp.detections, a.At)
				}
			}
			sp.analyzer.Submit(alerts)
		})
		sp.sink = netsim.NewSink(fmt.Sprintf("tap%03d", s))
		sp.sink.OnPacket = func(p *packet.Packet) {
			if segSim.Now() < trainUntil {
				sp.engine.Train(p, segSim.Now())
				return
			}
			sp.sensor.Offer(p)
		}
		mirror, err := top.AttachLeafMirror(s, sp.sink, netsim.LinkConfig{BandwidthBps: 10e9})
		if err != nil {
			return nil, err
		}
		sp.mirror = mirror
		segs[s] = sp
	}

	// Cancellation: every domain consults ctx about each interrupt
	// stride. The check runs on executor goroutines, so it must be (and
	// is) goroutine-safe: ctx.Err plus the campaign heartbeat.
	if ctx != nil && ctx != context.Background() {
		beat := par.HeartbeatFrom(ctx)
		ss.SetInterrupt(func() error {
			if beat != nil {
				beat()
			}
			return ctx.Err()
		})
	}

	// Per-segment background driver: a self-rescheduling source on the
	// segment's own random stream and a private Seq space, so every
	// segment's workload is independent of all others.
	for s := 0; s < cfg.Segments; s++ {
		startSegmentDriver(top, segs[s], s, cfg, horizon)
	}
	startExternalDriver(top, cfg, horizon)
	startAttackDriver(top, segs, cfg, trainUntil, horizon)

	start := time.Now()
	ss.RunUntil(horizon)
	ss.Run() // drain in-flight deliveries and scan completions
	wall := time.Since(start)
	if err := ss.Interrupted(); err != nil {
		return nil, fmt.Errorf("eval: sharded scale run interrupted: %w", err)
	}

	res := &ShardedScaleResult{
		Product:         spec.Name,
		Segments:        cfg.Segments,
		HostsPerSegment: cfg.HostsPerSegment,
		Hosts:           top.Hosts,
		Shards:          cfg.Shards,
		TrainFor:        trainFor,
		Duration:        cfg.Duration,
		Events:          ss.Processed(),
		Windows:         ss.Windows(),
		CrossMessages:   ss.CrossPosted(),
		WallSeconds:     wall.Seconds(),
	}
	if res.WallSeconds > 0 {
		res.EventsPerSec = float64(res.Events) / res.WallSeconds
	}
	res.Attribution = ss.Attribution()
	var delays []time.Duration
	for s, sp := range segs {
		st := SegmentScaleStats{
			Tapped:      sp.sink.Count,
			MirrorDrops: sp.mirror.StatsToward(sp.sink).Dropped,
			SensorDrops: sp.sensor.Dropped,
			AlertsSeen:  sp.analyzer.AlertsSeen,
			Incidents:   len(sp.monitor.Incidents),
		}
		st.AttacksInjected = len(sp.injects)
		// An injection is detected if any attack-port alert lands within
		// its AttackEvery window; the first such alert sets the delay.
		// Injections are AttackEvery apart and real delays are far
		// smaller, so the windows cannot overlap.
		di := 0
		for _, inj := range sp.injects {
			limit := inj + simtime.Time(cfg.AttackEvery)
			for di < len(sp.detections) && sp.detections[di] < inj {
				di++
			}
			if di < len(sp.detections) && sp.detections[di] < limit {
				st.AttacksDetected++
				delays = append(delays, time.Duration(sp.detections[di]-inj))
			}
		}
		res.PacketsSent += sp.sent
		res.PacketsTapped += st.Tapped
		res.MirrorDrops += st.MirrorDrops
		res.SensorDrops += st.SensorDrops
		res.AlertsSeen += st.AlertsSeen
		res.Incidents += st.Incidents
		res.Notifications += len(sp.monitor.Notifications)
		res.AttacksInjected += st.AttacksInjected
		res.AttacksDetected += st.AttacksDetected
		res.PerSegment = append(res.PerSegment, st)
		_ = s
	}
	if len(delays) > 0 {
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		res.DelayP50 = delays[len(delays)*50/100]
		p95 := len(delays) * 95 / 100
		if p95 >= len(delays) {
			p95 = len(delays) - 1
		}
		res.DelayP95 = delays[p95]
		res.DelayMax = delays[len(delays)-1]
	}
	return res, nil
}

// attackPort is the destination port attack injections use; detection
// matching keys on it.
const attackPort uint16 = 31337

// startSegmentDriver installs segment s's self-rescheduling background
// source. All of its state — rng stream, sequence counter, host picks —
// lives in the segment's domain.
func startSegmentDriver(top *netsim.LargeTopology, sp *segPipeline, s int, cfg ShardedScaleConfig, horizon simtime.Time) {
	segSim := top.SegmentSim(s)
	rng := segSim.Stream(fmt.Sprintf("large.seg%03d", s))
	hosts := top.Segment[s]
	gap := func() simtime.Time {
		return simtime.Time(float64(time.Second) / cfg.BackgroundPps * (0.5 + rng.Float64()))
	}
	var emit func()
	emit = func() {
		now := segSim.Now()
		if now >= horizon {
			return
		}
		si := rng.Intn(len(hosts))
		src := hosts[si]
		var dst packet.Addr
		if cfg.Segments > 1 && rng.Float64() < cfg.CrossRatio {
			os := rng.Intn(cfg.Segments - 1)
			if os >= s {
				os++
			}
			dst = netsim.LargeAddr(os, rng.Intn(cfg.HostsPerSegment))
		} else {
			di := rng.Intn(len(hosts))
			if di == si {
				di = (di + 1) % len(hosts)
			}
			dst = hosts[di].Addr()
		}
		var payload []byte
		dstPort := uint16(80)
		proto := packet.ProtoTCP
		switch rng.Intn(3) {
		case 0:
			payload = traffic.HTTPRequest(rng)
		case 1:
			payload = traffic.DNSQuery(rng)
			dstPort = 53
			proto = packet.ProtoUDP
		default:
			payload = traffic.BulkChunk(rng, 600+rng.Intn(800))
			dstPort = 443
		}
		sp.sent++
		src.Send(&packet.Packet{
			Seq:     uint64(s+1)<<48 | sp.sent,
			Src:     src.Addr(),
			Dst:     dst,
			SrcPort: uint16(20000 + rng.Intn(20000)),
			DstPort: dstPort,
			Proto:   proto,
			Payload: payload,
		})
		segSim.MustSchedule(gap(), emit)
	}
	segSim.MustSchedule(simtime.Time(50*time.Microsecond)*simtime.Time(s+1), emit)
}

// startExternalDriver sends modest north-south traffic from the external
// hosts into rotating segments (domain 0's own stream and Seq space).
func startExternalDriver(top *netsim.LargeTopology, cfg ShardedScaleConfig, horizon simtime.Time) {
	core := top.CoreSim()
	rng := core.Stream("large.ext")
	pps := cfg.BackgroundPps * 0.2
	var n uint64
	var emit func()
	emit = func() {
		now := core.Now()
		if now >= horizon {
			return
		}
		src := top.External[rng.Intn(len(top.External))]
		dst := netsim.LargeAddr(rng.Intn(cfg.Segments), rng.Intn(cfg.HostsPerSegment))
		n++
		src.Send(&packet.Packet{
			Seq:     n, // high 16 bits zero: disjoint from segment spaces
			Src:     src.Addr(),
			Dst:     dst,
			SrcPort: uint16(30000 + rng.Intn(10000)),
			DstPort: 80,
			Proto:   packet.ProtoTCP,
			Payload: traffic.HTTPRequest(rng),
		})
		core.MustSchedule(simtime.Time(float64(time.Second)/pps*(0.5+rng.Float64())), emit)
	}
	core.MustSchedule(simtime.Time(120*time.Microsecond), emit)
}

// startAttackDriver injects one attack every AttackEvery during the
// detection phase, rotating round-robin across segments, from the first
// external host. Inject times append to the target segment's record —
// written only by domain 0, read only after the run completes.
func startAttackDriver(top *netsim.LargeTopology, segs []*segPipeline, cfg ShardedScaleConfig, trainUntil, horizon simtime.Time) {
	core := top.CoreSim()
	rng := core.Stream("large.attack")
	attacker := top.External[0]
	var n int
	var fire func()
	fire = func() {
		now := core.Now()
		if now >= horizon {
			return
		}
		seg := n % cfg.Segments
		victim := netsim.LargeAddr(seg, rng.Intn(cfg.HostsPerSegment))
		segs[seg].injects = append(segs[seg].injects, now)
		attacker.Send(&packet.Packet{
			Seq:     uint64(255)<<48 | uint64(n),
			Src:     attacker.Addr(),
			Dst:     victim,
			SrcPort: uint16(40000 + rng.Intn(10000)),
			DstPort: attackPort,
			Proto:   packet.ProtoTCP,
			Payload: attackPayload,
			Truth: packet.Label{
				Malicious: true,
				AttackID:  fmt.Sprintf("phf-%04d", n),
				Technique: "phf",
			},
		})
		n++
		core.MustSchedule(simtime.Time(cfg.AttackEvery), fire)
	}
	core.MustSchedule(trainUntil+simtime.Time(cfg.AttackEvery)/2, fire)
}
