package eval

import (
	"sort"
	"time"

	"repro/internal/hostmon"
	"repro/internal/products"
	"repro/internal/rts"
	"repro/internal/simtime"
)

// ImpactResult holds the Operational Performance Impact observation: the
// host CPU fraction the product's host-resident components consume and
// its effect on real-time deadlines.
type ImpactResult struct {
	Product string
	// HasHostComponents is false for pure network products (standalone
	// sensor boxes), whose host impact is zero by construction.
	HasHostComponents bool
	// OverheadFraction is the measured CPU fraction consumed.
	OverheadFraction float64
	// JobsCompleted / DeadlineMisses summarize the RT task outcome.
	JobsCompleted  uint64
	DeadlineMisses uint64
	MissRatio      float64
	// LogLevel is the agent's audit depth, when deployed.
	LogLevel hostmon.LogLevel
}

// impactActivityEps is the standard audit activity rate the paper's
// 3-5%/20% figures are calibrated against.
const impactActivityEps = 800

// MeasureOperationalImpact runs the product's host-resident components on
// a standard real-time host for 10 virtual seconds at the standard audit
// activity rate.
func MeasureOperationalImpact(spec products.Spec, seed int64) (*ImpactResult, error) {
	res := &ImpactResult{Product: spec.Name, LogLevel: spec.HostAgentLevel}
	if !spec.HostAgents {
		return res, nil
	}
	res.HasHostComponents = true
	sim := simtime.New(seed)
	host := rts.NewHost(sim, "impact-host")
	for _, task := range rts.StandardTaskSet() {
		if err := host.AddTask(task); err != nil {
			return nil, err
		}
	}
	agent := hostmon.NewAgent(sim, host, spec.HostAgentLevel)
	gen, err := hostmon.NewActivityGenerator(sim, agent, impactActivityEps)
	if err != nil {
		return nil, err
	}
	if err := host.Start(); err != nil {
		return nil, err
	}
	sim.RunUntil(10 * time.Second)
	gen.Stop()
	host.Stop()
	sim.Run()
	res.OverheadFraction = host.Overhead()
	res.JobsCompleted = host.JobsCompleted
	res.DeadlineMisses = host.DeadlineMisses
	res.MissRatio = host.MissRatio()
	return res, nil
}

// CompromiseResult holds the Analysis-of-Compromise observation: given
// the insider/masquerade incidents of a run, how much of the true
// compromise scope the product surfaced, and what the trust graph says
// the exposure is.
type CompromiseResult struct {
	Product string
	// TrulyCompromised are hosts ground truth says were compromised.
	TrulyCompromised []string
	// Identified are compromised hosts the product named in a report.
	Identified []string
	// Coverage is |Identified ∩ TrulyCompromised| / |TrulyCompromised|
	// (1.0 when nothing was compromised).
	Coverage float64
	// ExposedByTrust is the transitive trust-graph exposure of the truly
	// compromised hosts — the paper's full-trust-cluster warning made
	// concrete.
	ExposedByTrust []string
}

// AnalyzeCompromise derives the compromise analysis from an accuracy run:
// the testbed's cluster forms a full-trust cluster (the paper's worst
// case), truth comes from the campaign's insider/masquerade incidents,
// and identification comes from the product's reported incidents.
func AnalyzeCompromise(tb *Testbed, res *AccuracyResult) *CompromiseResult {
	out := &CompromiseResult{Product: tb.Spec.Name}
	names := make([]string, len(tb.Top.Cluster))
	addrToName := make(map[uint32]string)
	for i, h := range tb.Top.Cluster {
		names[i] = h.Name()
		addrToName[uint32(h.Addr())] = h.Name()
	}
	trust := rts.FullTrustCluster(names)

	truly := make(map[string]bool)
	for host := range res.compromisedTruth {
		if n, ok := addrToName[host]; ok {
			truly[n] = true
		}
	}
	identified := make(map[string]bool)
	for host := range res.compromisedFound {
		if n, ok := addrToName[host]; ok {
			identified[n] = true
		}
	}
	for n := range truly {
		out.TrulyCompromised = append(out.TrulyCompromised, n)
	}
	sort.Strings(out.TrulyCompromised)
	hit := 0
	for n := range identified {
		out.Identified = append(out.Identified, n)
		if truly[n] {
			hit++
		}
	}
	sort.Strings(out.Identified)
	if len(out.TrulyCompromised) == 0 {
		out.Coverage = 1
	} else {
		out.Coverage = float64(hit) / float64(len(out.TrulyCompromised))
	}
	exposed := make(map[string]bool)
	for _, n := range out.TrulyCompromised {
		for _, e := range trust.CompromiseScope(n) {
			exposed[e] = true
		}
	}
	for n := range exposed {
		out.ExposedByTrust = append(out.ExposedByTrust, n)
	}
	sort.Strings(out.ExposedByTrust)
	return out
}
