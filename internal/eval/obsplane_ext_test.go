package eval_test

// External-package tests for the live observability plane's cross-layer
// contract (report imports eval, so byte-level rendering comparisons
// cannot live in package eval): switching on the full observation stack
// — registry, per-shard attribution, flight recorder — changes nothing
// a run prints to stdout or stores in its deterministic result fields.
// Telemetry observes; it never perturbs.

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/report"
)

func obsScaleConfig(shards int) eval.ShardedScaleConfig {
	return eval.ShardedScaleConfig{
		Seed:            4321,
		Segments:        4,
		HostsPerSegment: 8,
		ExternalHosts:   2,
		Shards:          shards,
		Duration:        250 * time.Millisecond,
		BackgroundPps:   600,
		AttackEvery:     50 * time.Millisecond,
	}
}

// renderShardedStdout renders exactly what the idseval CLI prints to
// stdout for a sharded run — the surface the determinism contract pins.
func renderShardedStdout(t *testing.T, cfg eval.ShardedScaleConfig) (string, *eval.ShardedScaleResult) {
	t.Helper()
	res, err := eval.RunShardedScale(context.Background(), products.TrueSecure(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := report.ShardedScaleReport(&buf, res); err != nil {
		t.Fatal(err)
	}
	return buf.String(), res
}

func TestObsPlaneShardedDeterminism(t *testing.T) {
	// The acceptance guard: the same seed with the full observability
	// plane armed (registry + flight recorder, as -listen/-trace-out
	// arm it) renders byte-identical stdout vs all-off, at shards 1
	// and 4.
	want, bare := renderShardedStdout(t, obsScaleConfig(1))
	if bare.Events == 0 {
		t.Fatal("degenerate run")
	}
	for _, shards := range []int{1, 4} {
		cfg := obsScaleConfig(shards)
		cfg.Obs = obs.NewRegistry()
		cfg.Obs.EnableFlight(obs.DefaultFlightCapacity)
		got, res := renderShardedStdout(t, cfg)
		if got != want {
			t.Errorf("shards=%d observed run diverged from bare shards=1:\n--- bare ---\n%s--- observed ---\n%s",
				shards, want, got)
		}

		// The observed run must actually have observed: per-domain
		// attribution present and reconciling with the kernel counters,
		// and shard windows on the flight timeline.
		if len(res.Attribution) == 0 {
			t.Fatalf("shards=%d: instrumented run has no attribution", shards)
		}
		var events uint64
		for _, a := range res.Attribution {
			events += a.Events
		}
		if events != res.Events {
			t.Errorf("shards=%d: attribution events %d != kernel events %d", shards, events, res.Events)
		}
		fl := cfg.Obs.Flight()
		if fl.Recorded() == 0 {
			t.Fatalf("shards=%d: flight recorder stayed empty", shards)
		}
		windows := 0
		for _, ev := range fl.Events() {
			if ev.Kind == obs.FlightWindow {
				windows++
			}
		}
		if windows == 0 {
			t.Errorf("shards=%d: no window events on the flight timeline", shards)
		}

		// The attribution rendering itself must be well-formed (it goes
		// to stderr, beside events/sec — never into the stdout report).
		var attr bytes.Buffer
		if err := report.ShardedScaleAttribution(&attr, res); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(attr.String(), "per-domain attribution") ||
			!strings.Contains(attr.String(), "balance:") {
			t.Errorf("attribution render incomplete:\n%s", attr.String())
		}
	}

	// An uninstrumented run renders no attribution at all.
	var attr bytes.Buffer
	if err := report.ShardedScaleAttribution(&attr, bare); err != nil {
		t.Fatal(err)
	}
	if attr.Len() != 0 {
		t.Errorf("bare run rendered attribution:\n%s", attr.String())
	}
}

func TestFaultFlightRecorderNeutral(t *testing.T) {
	// Fault onsets land on the flight timeline by wrapping the existing
	// onset closures — never by scheduling new simulation events — so a
	// recorded run must render byte-identically to a bare one.
	sc, err := faults.Load("../../examples/faults/pipeline-outage.json")
	if err != nil {
		t.Fatal(err)
	}
	spec := products.TrueSecure()

	tbA, err := eval.NewTestbed(spec, quickTestbedCfg())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := eval.RunFaultScenario(tbA, sc, 0.5, 20*time.Second, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	cfg := quickTestbedCfg()
	cfg.Obs = obs.NewRegistry()
	fl := cfg.Obs.EnableFlight(obs.DefaultFlightCapacity)
	tbB, err := eval.NewTestbed(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := eval.RunFaultScenario(tbB, sc, 0.5, 20*time.Second, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	if a, b := renderFaultAccuracy(t, plain.Accuracy), renderFaultAccuracy(t, observed.Accuracy); a != b {
		t.Fatalf("flight recorder perturbed the run:\n--- bare ---\n%s\n--- observed ---\n%s", a, b)
	}
	if plain.AlertsLost != observed.AlertsLost || plain.MgmtDropped != observed.MgmtDropped {
		t.Fatalf("fault accounting diverged: bare %+v vs observed %+v", plain, observed)
	}

	// Every applied fault's onset must be on the timeline, named
	// kind:target with the effective severity in permille.
	injects := map[string]int{}
	for _, ev := range fl.Events() {
		if ev.Kind == obs.FlightFaultInject {
			injects[ev.Name]++
			if ev.Arg < 0 || ev.Arg > 1000 {
				t.Errorf("fault %s: permille %d outside [0,1000]", ev.Name, ev.Arg)
			}
			if ev.Sim < 0 {
				t.Errorf("fault %s: no sim timestamp", ev.Name)
			}
		}
	}
	if len(injects) == 0 {
		t.Fatal("no fault_inject events on the flight timeline")
	}
	for _, ap := range observed.Applied {
		if injects[ap.Kind+":"+ap.Target] == 0 {
			t.Errorf("applied fault %s:%s missing from flight timeline (have %v)", ap.Kind, ap.Target, injects)
		}
	}
}
