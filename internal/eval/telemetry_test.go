package eval

import (
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/products"
)

func TestDelayStatsKnownDistribution(t *testing.T) {
	// A uniform 1..1000 ms distribution has known quantiles; the
	// histogram estimator (default log-spaced ladder with in-bucket
	// interpolation) must land within ~12% of the true values.
	var delays []time.Duration
	for i := 1; i <= 1000; i++ {
		delays = append(delays, time.Duration(i)*time.Millisecond)
	}
	p50, p95, p99, snap := delayStats(delays)
	if snap == nil || snap.Count != 1000 {
		t.Fatalf("snapshot missing or wrong count: %+v", snap)
	}
	check := func(name string, got, want time.Duration) {
		t.Helper()
		tol := want * 12 / 100
		if got < want-tol || got > want+tol {
			t.Errorf("%s = %v, want %v ± %v", name, got, want, tol)
		}
	}
	check("p50", p50, 500*time.Millisecond)
	check("p95", p95, 950*time.Millisecond)
	check("p99", p99, 990*time.Millisecond)
	if !(p50 <= p95 && p95 <= p99) {
		t.Fatalf("quantiles out of order: %v %v %v", p50, p95, p99)
	}
	if p99 > time.Second || snap.QuantileDuration(1) != time.Second {
		t.Fatalf("quantiles exceed observed max: p99=%v max=%v", p99, snap.QuantileDuration(1))
	}

	// No detections → zeros and no histogram.
	z50, z95, z99, zsnap := delayStats(nil)
	if z50 != 0 || z95 != 0 || z99 != 0 || zsnap != nil {
		t.Fatalf("empty delayStats = %v %v %v %+v", z50, z95, z99, zsnap)
	}
}

func TestBuildTelemetryAndPublish(t *testing.T) {
	ev := &ProductEvaluation{
		Spec: products.Spec{Name: "X"},
		Accuracy: &AccuracyResult{
			DelayP50: 10 * time.Millisecond, DelayP95: 40 * time.Millisecond, DelayP99: 90 * time.Millisecond,
			TapDrops: 50, SensorDrops: 150, IngestedPkts: 950, ProcessedPkts: 800,
			SensorBusy:        2 * time.Second,
			ReportedIncidents: 7, Notifications: 3, FalseAlarms: 2,
		},
		Latency: &LatencyResult{
			Induced: 25 * time.Microsecond, InducedP95: 60 * time.Microsecond,
		},
	}
	tel := BuildTelemetry(ev)
	// (50 tap + 150 sensor) / (950 ingested + 50 tap offered) = 0.2.
	if tel.DropRatio != 0.2 {
		t.Fatalf("drop ratio = %v, want 0.2", tel.DropRatio)
	}
	// 800 processed over 2s busy = 400 pps.
	if tel.ScanThroughputPps != 400 {
		t.Fatalf("scan throughput = %v, want 400", tel.ScanThroughputPps)
	}

	reg := obs.NewRegistry()
	tel.Publish(reg)
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"scorecard.detection_delay_p50_ns": int64(10 * time.Millisecond),
		"scorecard.detection_delay_p95_ns": int64(40 * time.Millisecond),
		"scorecard.detection_delay_p99_ns": int64(90 * time.Millisecond),
		"scorecard.drop_ratio_ppm":         200000,
		"scorecard.scan_throughput_pps":    400,
		"scorecard.operator_incidents":     7,
		"scorecard.operator_notifications": 3,
		"scorecard.false_alarms":           2,
		"scorecard.induced_latency_ns":     int64(25 * time.Microsecond),
		"scorecard.induced_latency_p95_ns": int64(60 * time.Microsecond),
	} {
		g, ok := snap.Gauge(name)
		if !ok {
			t.Errorf("gauge %s not published", name)
			continue
		}
		if g.Value != want {
			t.Errorf("%s = %d, want %d", name, g.Value, want)
		}
	}

	// Publish on nil pieces must be safe no-ops.
	BuildTelemetry(&ProductEvaluation{Spec: products.Spec{Name: "empty"}}).Publish(nil)
	var nilTel *Telemetry
	nilTel.Publish(reg)
}

func TestLatencyPercentilesPopulated(t *testing.T) {
	// The histogram-backed percentile fields must be filled and ordered
	// for a real measurement run.
	lat, err := MeasureInducedLatency(products.TrueSecure(), TapMirror, 11)
	if err != nil {
		t.Fatal(err)
	}
	if lat.BaselineHist == nil || lat.WithIDSHist == nil {
		t.Fatal("probe histograms missing")
	}
	if lat.BaselineHist.Count != uint64(lat.Probes) {
		t.Fatalf("baseline histogram has %d observations, want %d", lat.BaselineHist.Count, lat.Probes)
	}
	if lat.BaselineP50 <= 0 || lat.WithIDSP50 <= 0 {
		t.Fatalf("p50 not populated: %v / %v", lat.BaselineP50, lat.WithIDSP50)
	}
	for _, tri := range [][3]time.Duration{
		{lat.BaselineP50, lat.BaselineP95, lat.BaselineP99},
		{lat.WithIDSP50, lat.WithIDSP95, lat.WithIDSP99},
	} {
		if !(tri[0] <= tri[1] && tri[1] <= tri[2]) {
			t.Fatalf("percentiles out of order: %v", tri)
		}
	}
}
