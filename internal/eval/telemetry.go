package eval

import (
	"time"

	"repro/internal/obs"
)

// This file is the obs→scorecard bridge: it distills a product
// evaluation's raw results into the class-3 performance quantities the
// paper scores on, and publishes them as "scorecard.*" telemetry so the
// exported dump carries the same numbers the report prints.
//
// Determinism contract: everything here is derived from result structs
// that are computed identically whether telemetry export is enabled or
// not. Telemetry observes; it never perturbs.

// delayStats summarizes detection delays through the same fixed-bucket
// histogram estimator the telemetry subsystem exports, so the
// percentiles in AccuracyResult and in the telemetry dump are one
// number, not two estimators that drift apart. Returns zeros and a nil
// snapshot when nothing was detected.
func delayStats(delays []time.Duration) (p50, p95, p99 time.Duration, snap *obs.HistSnap) {
	if len(delays) == 0 {
		return 0, 0, 0, nil
	}
	h := obs.NewHistogram("eval.detection_delay_ns", obs.ClockSim, nil)
	for _, d := range delays {
		h.Observe(int64(d))
	}
	snap = h.Snap()
	return snap.QuantileDuration(0.5), snap.QuantileDuration(0.95), snap.QuantileDuration(0.99), snap
}

// Telemetry is the structured snapshot of scorecard-grade performance
// quantities for one product: the class-3 metrics of the paper
// (timeliness, pipeline loss, scan throughput, operator workload,
// induced latency) in raw physical units, before scoring discretizes
// them to 0–4.
type Telemetry struct {
	Product string `json:"product"`

	// Detection latency distribution (sim clock).
	DelayP50 time.Duration `json:"delay_p50"`
	DelayP95 time.Duration `json:"delay_p95"`
	DelayP99 time.Duration `json:"delay_p99"`

	// Pipeline loss: packets the product never inspected, as a fraction
	// of packets offered to the tap (mirror-link drops + sensor queue
	// drops over tap-offered = ingested + tap drops).
	DropRatio   float64 `json:"drop_ratio"`
	TapDrops    uint64  `json:"tap_drops"`
	SensorDrops uint64  `json:"sensor_drops"`
	Ingested    uint64  `json:"ingested"`
	Processed   uint64  `json:"processed"`

	// ScanThroughputPps is processed packets per second of summed
	// sensor busy time (sim clock) — the sensors' demonstrated scan
	// rate, independent of offered load.
	ScanThroughputPps float64 `json:"scan_throughput_pps"`

	// Operator workload: what the monitor pushed at a human.
	Incidents     int `json:"incidents"`
	Notifications int `json:"notifications"`
	FalseAlarms   int `json:"false_alarms"`

	// Induced traffic latency (sim clock): mean and tail.
	InducedLatency    time.Duration `json:"induced_latency"`
	InducedLatencyP95 time.Duration `json:"induced_latency_p95"`
}

// BuildTelemetry distills a completed evaluation into its Telemetry
// summary. Nil sub-results (a partially-run evaluation) contribute
// zeros.
func BuildTelemetry(ev *ProductEvaluation) *Telemetry {
	t := &Telemetry{Product: ev.Spec.Name}
	if acc := ev.Accuracy; acc != nil {
		t.DelayP50, t.DelayP95, t.DelayP99 = acc.DelayP50, acc.DelayP95, acc.DelayP99
		t.TapDrops = acc.TapDrops
		t.SensorDrops = acc.SensorDrops
		t.Ingested = acc.IngestedPkts
		t.Processed = acc.ProcessedPkts
		if offered := acc.IngestedPkts + acc.TapDrops; offered > 0 {
			t.DropRatio = float64(acc.TapDrops+acc.SensorDrops) / float64(offered)
		}
		if acc.SensorBusy > 0 {
			t.ScanThroughputPps = float64(acc.ProcessedPkts) / acc.SensorBusy.Seconds()
		}
		t.Incidents = acc.ReportedIncidents
		t.Notifications = acc.Notifications
		t.FalseAlarms = acc.FalseAlarms
	}
	if lat := ev.Latency; lat != nil {
		t.InducedLatency = lat.Induced
		t.InducedLatencyP95 = lat.InducedP95
	}
	return t
}

// Publish writes the summary into reg as "scorecard.*" gauges — the
// class-3 scorecard quantities in the telemetry dump's own vocabulary.
// Ratios are published in parts per million to stay integral. No-op on
// a nil registry.
func (t *Telemetry) Publish(reg *obs.Registry) {
	if t == nil || reg == nil {
		return
	}
	reg.Gauge("scorecard.detection_delay_p50_ns").Set(int64(t.DelayP50))
	reg.Gauge("scorecard.detection_delay_p95_ns").Set(int64(t.DelayP95))
	reg.Gauge("scorecard.detection_delay_p99_ns").Set(int64(t.DelayP99))
	reg.Gauge("scorecard.drop_ratio_ppm").Set(int64(t.DropRatio * 1e6))
	reg.Gauge("scorecard.scan_throughput_pps").Set(int64(t.ScanThroughputPps))
	reg.Gauge("scorecard.operator_incidents").Set(int64(t.Incidents))
	reg.Gauge("scorecard.operator_notifications").Set(int64(t.Notifications))
	reg.Gauge("scorecard.false_alarms").Set(int64(t.FalseAlarms))
	reg.Gauge("scorecard.induced_latency_ns").Set(int64(t.InducedLatency))
	reg.Gauge("scorecard.induced_latency_p95_ns").Set(int64(t.InducedLatencyP95))
}

// measurementHists collects the always-on measurement-level histogram
// snapshots (latency probes, detection delays) so the export dump
// carries full distributions, not just the derived percentiles.
func (ev *ProductEvaluation) measurementHists() []*obs.HistSnap {
	var out []*obs.HistSnap
	if acc := ev.Accuracy; acc != nil && acc.DelayHist != nil {
		out = append(out, acc.DelayHist)
	}
	if lat := ev.Latency; lat != nil {
		if lat.BaselineHist != nil {
			out = append(out, lat.BaselineHist)
		}
		if lat.WithIDSHist != nil {
			out = append(out, lat.WithIDSHist)
		}
	}
	return out
}
