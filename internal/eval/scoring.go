package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/products"
)

// Score mappings: every function here converts a raw observation into the
// discrete 0–4 scale. Thresholds are this repository's calibration of the
// paper's qualitative anchors ("low / average / high"); their absolute
// positions are documented here and in EXPERIMENTS.md, and the relative
// ordering of products — which is what the methodology ranks on — does
// not depend on the exact cut points.

// ScoreZeroLoss maps zero-loss throughput (pps) to a score.
func ScoreZeroLoss(pps float64) core.Score {
	switch {
	case pps >= 100_000:
		return 4
	case pps >= 40_000:
		return 3
	case pps >= 15_000:
		return 2
	case pps >= 5_000:
		return 1
	default:
		return 0
	}
}

// ScoreLethalDose maps the failure rate (pps) to a score; indestructible
// within the probed range scores 4.
func ScoreLethalDose(lethalPps float64, indestructible bool) core.Score {
	if indestructible {
		return 4
	}
	switch {
	case lethalPps >= 150_000:
		return 4
	case lethalPps >= 60_000:
		return 3
	case lethalPps >= 20_000:
		return 2
	case lethalPps >= 8_000:
		return 1
	default:
		return 0
	}
}

// ScoreSystemThroughput is the architectural twin of zero-loss: maximal
// successfully-processed input rate.
func ScoreSystemThroughput(pps float64) core.Score { return ScoreZeroLoss(pps) }

// ScoreInducedLatency maps added per-packet latency to a score (lower is
// better).
func ScoreInducedLatency(d time.Duration) core.Score {
	switch {
	case d <= 10*time.Microsecond:
		return 4
	case d <= 100*time.Microsecond:
		return 3
	case d <= time.Millisecond:
		return 2
	case d <= 10*time.Millisecond:
		return 1
	default:
		return 0
	}
}

// ScoreTimeliness maps mean detection delay to a score.
func ScoreTimeliness(mean time.Duration, detectedAny bool) core.Score {
	if !detectedAny {
		return 0
	}
	switch {
	case mean <= 100*time.Millisecond:
		return 4
	case mean <= time.Second:
		return 3
	case mean <= 5*time.Second:
		return 2
	case mean <= 30*time.Second:
		return 1
	default:
		return 0
	}
}

// ScoreFalsePositiveRatio maps the Figure-3 FP ratio (per transaction) to
// a score (lower is better).
func ScoreFalsePositiveRatio(r float64) core.Score {
	switch {
	case r <= 0.001:
		return 4
	case r <= 0.01:
		return 3
	case r <= 0.05:
		return 2
	case r <= 0.15:
		return 1
	default:
		return 0
	}
}

// ScoreFalseNegative maps the per-attack miss rate to a score (lower is
// better). The per-attack view is used because the per-transaction FN
// ratio is diluted by benign transaction volume; both are reported.
func ScoreFalseNegative(missRate float64) core.Score {
	switch {
	case missRate == 0:
		return 4
	case missRate <= 0.15:
		return 3
	case missRate <= 0.35:
		return 2
	case missRate <= 0.6:
		return 1
	default:
		return 0
	}
}

// ScoreOperationalImpact maps host CPU overhead to a score. The paper's
// calibration points: ~0% (standalone network sensor) is ideal, 3-5%
// (nominal logging) is acceptable, ~20% (C2 auditing) is a real-time
// problem.
func ScoreOperationalImpact(frac float64) core.Score {
	switch {
	case frac <= 0.005:
		return 4
	case frac <= 0.05:
		return 3
	case frac <= 0.10:
		return 2
	case frac <= 0.20:
		return 1
	default:
		return 0
	}
}

// ScoreDataStorage maps stored bytes per megabyte of source traffic to a
// score (lower is better).
func ScoreDataStorage(storedPerMB float64) core.Score {
	switch {
	case storedPerMB <= 1<<10:
		return 4
	case storedPerMB <= 16<<10:
		return 3
	case storedPerMB <= 128<<10:
		return 2
	case storedPerMB <= 1<<20:
		return 1
	default:
		return 0
	}
}

// ScoreLoadBalancing scores the discipline per the paper's anchors:
// none=0 ("No load balancing"), static placement=2 ("static methods such
// as placement"), and intelligent/dynamic=4, with flow-hash between.
func ScoreLoadBalancing(k ids.BalancerKind) core.Score {
	switch k {
	case ids.BalancerDynamic:
		return 4
	case ids.BalancerFlowHash:
		return 3
	case ids.BalancerStatic:
		return 2
	default:
		return 0
	}
}

// ScoreAdjustableSensitivity scores the knob by its measured effect: both
// error types must move, in the expected directions, by a material
// amount.
func ScoreAdjustableSensitivity(e SensitivityEffect) core.Score {
	movedII := e.TypeIIRange >= 5 // ≥5 percentage points of Type II swing
	movedI := e.TypeIRange >= 0.05
	switch {
	case movedII && movedI && e.TradeoffDirectionOK:
		return 4
	case movedII && movedI:
		return 3
	case movedII || movedI:
		return 2
	default:
		return 1 // knob exists (SetSensitivity succeeded) but no effect
	}
}

// ScoreErrorReporting scores failure behaviour per the metric's anchors,
// from the configured failure mode, observed recovery, and whether a
// console (watchdog/reporting path) exists.
func ScoreErrorReporting(cfg ids.Config, failuresObserved bool, recovered bool) core.Score {
	base := core.Score(0)
	switch cfg.FailureMode {
	case ids.FailOpen:
		base = 2 // degrades silently but nothing hangs
	case ids.FailClosed:
		base = 1 // failure visibly blocks the network
	case ids.FailCrash:
		if cfg.RestartAfter > 0 {
			base = 3 // "fatal errors cause restart of application(s)"
		} else {
			base = 0 // hangs dead until operator action
		}
	}
	if cfg.HasConsole && base < 4 {
		base++ // failure is reported via the management channel
	}
	if failuresObserved && !recovered && cfg.FailureMode == ids.FailCrash && cfg.RestartAfter > 0 {
		// Configured to restart but observed not recovering.
		base--
	}
	if base < 0 {
		base = 0
	}
	return base
}

// ScoreResponseChannel scores firewall/router/SNMP interaction from
// observed behaviour: exercised in the run = 4 (or 3 if exercised without
// visible effect), configured-but-idle capability = 2, console without
// the channel = 1, no console = 0.
func ScoreResponseChannel(hasConsole, policyHasChannel bool, events int, effective bool) core.Score {
	switch {
	case !hasConsole:
		return 0
	case events > 0 && effective:
		return 4
	case events > 0:
		return 3
	case policyHasChannel:
		return 2
	default:
		return 1
	}
}

// ScoreCompromiseAnalysis maps compromise-identification coverage to a
// score, with a bonus for products whose correlation names the full
// scope.
func ScoreCompromiseAnalysis(coverage float64, identifiedAny bool) core.Score {
	switch {
	case coverage >= 0.99:
		return 4
	case coverage >= 0.66:
		return 3
	case coverage >= 0.33:
		return 2
	case identifiedAny:
		return 1
	default:
		return 0
	}
}

// ScoreSurvivability maps the fault sweep's retention — detection
// capability remaining at full fault severity as a fraction of the clean
// baseline — to the 0–4 scale. The high anchor is the paper's
// "resistance to attack upon self": a product that keeps detecting while
// its own parts fail.
func ScoreSurvivability(retention float64) core.Score {
	switch {
	case retention >= 0.9:
		return 4
	case retention >= 0.7:
		return 3
	case retention >= 0.4:
		return 2
	case retention > 0.1:
		return 1
	default:
		return 0
	}
}

// ScoreGracefulDegradation maps the worst single-step detection drop
// across the severity sweep (normalized by baseline) to the 0–4 scale:
// small steps mean capability decays smoothly with severity, one large
// step means a cliff — the product fails all at once.
func ScoreGracefulDegradation(maxStepDrop float64) core.Score {
	switch {
	case maxStepDrop <= 0.1:
		return 4
	case maxStepDrop <= 0.25:
		return 3
	case maxStepDrop <= 0.5:
		return 2
	case maxStepDrop <= 0.75:
		return 1
	default:
		return 0
	}
}

// Options sizes a full product evaluation. Quick shrinks every experiment
// for tests.
type Options struct {
	Seed  int64
	Quick bool
	// Workers bounds every worker pool the evaluation fans out on — the
	// product matrix, the per-product measured metrics, and the
	// sensitivity sweeps. 0 sizes the pools to the machine; 1 forces the
	// fully serial path. Because every experiment owns its simulation and
	// derives its RNG streams from Seed alone, both settings produce
	// bit-identical scorecards.
	Workers int
	// Telemetry wires an obs registry through the accuracy testbed and
	// assembles the exportable Snapshot on each ProductEvaluation.
	// Telemetry observes and never perturbs: scorecards and results are
	// bit-identical with it on or off (the determinism guard test pins
	// this).
	Telemetry bool
	// OnSnapshot, when set alongside Telemetry, is called with each
	// product's snapshot as that product's evaluation completes — the
	// hook behind a live /metrics endpoint that accumulates products as
	// they finish. Called from worker goroutines; the callback must be
	// safe for concurrent use.
	OnSnapshot func(spec products.Spec, snap *obs.Snapshot)
}

// ProductEvaluation bundles a product's complete scorecard with the raw
// results behind every measured score.
type ProductEvaluation struct {
	Spec       products.Spec
	Card       *core.Scorecard
	Accuracy   *AccuracyResult
	Throughput *ThroughputResult
	Latency    *LatencyResult
	Impact     *ImpactResult
	Sweep      *SweepResult
	Compromise *CompromiseResult
	// Telemetry is the scorecard-grade performance summary, always
	// derived from the results above.
	Telemetry *Telemetry
	// Snapshot is the full exportable telemetry dump (component
	// instrumentation + scorecard gauges + measurement histograms).
	// Nil unless Options.Telemetry was set.
	Snapshot *obs.Snapshot
}

// EvaluateProduct runs every experiment against one product and fills a
// complete scorecard: static observations from the spec plus measured
// observations from the harness.
//
// The measured metrics — accuracy/compromise, throughput, latency, host
// impact, and the sensitivity sweep — are independent experiments: each
// builds its own simulation from opts.Seed and never shares mutable
// state with the others (compiled signature corpora are shared, but
// immutable). They therefore fan out on the bounded runner, and because
// every experiment's RNG streams derive from opts.Seed alone, the
// parallel scorecard is bit-identical to the serial one.
//
// Cancelling ctx (SIGINT, a timeout, a campaign watchdog) halts the
// in-flight simulations at the kernel's interrupt stride and returns
// the cancellation error; a partially evaluated product has no valid
// scorecard, so no partial ProductEvaluation is returned.
func EvaluateProduct(ctx context.Context, spec products.Spec, reg *core.Registry, opts Options) (*ProductEvaluation, error) {
	if opts.Seed == 0 {
		opts.Seed = 11
	}
	card := core.NewScorecard(reg, spec.Name, spec.Version)
	if err := spec.ApplyStatic(card); err != nil {
		return nil, err
	}
	ev := &ProductEvaluation{Spec: spec, Card: card}

	// Component instrumentation rides the accuracy testbed (the run with
	// a full pipeline under attack load). Only the export dump depends
	// on this registry — never a result field.
	var accReg *obs.Registry
	if opts.Telemetry {
		accReg = obs.NewRegistry()
	}

	experiments := []func(ctx context.Context) error{
		// Accuracy + timeliness + response + compromise (one big run).
		func(ctx context.Context) error {
			accCfg := TestbedConfig{Seed: opts.Seed, Obs: accReg}
			attackFor := 45 * time.Second
			strength := attack.Intensity(1)
			if opts.Quick {
				accCfg.TrainFor = 8 * time.Second
				accCfg.BackgroundPps = 250
				attackFor = 20 * time.Second
				strength = 0.5
			}
			tb, err := NewTestbed(spec, accCfg)
			if err != nil {
				return err
			}
			tb.Bind(ctx)
			acc, err := RunAccuracy(tb, 0.6, attackFor, strength)
			if err != nil {
				return err
			}
			ev.Accuracy = acc
			ev.Compromise = AnalyzeCompromise(tb, acc)
			return nil
		},
		// Throughput / lethal dose.
		func(ctx context.Context) error {
			thOpts := ThroughputOptions{Seed: opts.Seed}
			if opts.Quick {
				thOpts.Window = 100 * time.Millisecond
				thOpts.HiPps = 65536
			}
			th, err := MeasureThroughput(ctx, spec, thOpts)
			if err != nil {
				return err
			}
			ev.Throughput = th
			return nil
		},
		// Induced latency: products deploy per their nature — everything
		// is measured both ways by the ablation bench; the scorecard uses
		// the passive (mirror) deployment, the paper's common case, except
		// that the latency number still reflects any balancer cost.
		func(ctx context.Context) error {
			lat, err := MeasureInducedLatency(spec, TapMirror, opts.Seed)
			if err != nil {
				return err
			}
			ev.Latency = lat
			return nil
		},
		// Host impact.
		func(ctx context.Context) error {
			imp, err := MeasureOperationalImpact(spec, opts.Seed)
			if err != nil {
				return err
			}
			ev.Impact = imp
			return nil
		},
		// Sensitivity sweep.
		func(ctx context.Context) error {
			swOpts := SweepOptions{Seed: opts.Seed, Workers: opts.Workers}
			if opts.Quick {
				swOpts.Points = 3
				swOpts.TrainFor = 6 * time.Second
				swOpts.RunFor = 14 * time.Second
				swOpts.Pps = 200
				swOpts.Strength = 0.5
			}
			sw, err := SensitivitySweep(ctx, spec, swOpts)
			if err != nil {
				return err
			}
			ev.Sweep = sw
			return nil
		},
	}
	err := par.ForEach(ctx, len(experiments), opts.Workers, func(ctx context.Context, i int) error {
		return experiments[i](ctx)
	})
	if err != nil {
		return nil, err
	}

	if err := ev.fillMeasuredScores(); err != nil {
		return nil, err
	}

	ev.Telemetry = BuildTelemetry(ev)
	if opts.Telemetry {
		top := obs.NewRegistry()
		ev.Telemetry.Publish(top)
		detect.PublishCacheMetrics(top)
		snap := top.Snapshot()
		snap.Hists = append(snap.Hists, ev.measurementHists()...)
		snap.Merge(accReg.Snapshot().Prefixed("accuracy."))
		ev.Snapshot = snap
		if opts.OnSnapshot != nil {
			opts.OnSnapshot(spec, snap)
		}
	}
	return ev, nil
}

// fillMeasuredScores writes the 16 harness-measured observations.
func (ev *ProductEvaluation) fillMeasuredScores() error {
	card, spec := ev.Card, ev.Spec
	acc, th, lat, imp, sw := ev.Accuracy, ev.Throughput, ev.Latency, ev.Impact, ev.Sweep

	storedPerMB := 0.0
	if acc.IngestedBytes > 0 {
		storedPerMB = float64(acc.StorageBytes) / (float64(acc.IngestedBytes) / (1 << 20))
	}
	hasConsole := spec.IDS.HasConsole
	policyHas := func(a ids.ResponseAction) bool {
		for _, v := range spec.ResponsePolicy {
			if v == a {
				return true
			}
		}
		return false
	}

	set := func(id string, s core.Score, note string) error {
		return card.Set(core.Observation{MetricID: id, Score: s, How: core.ByAnalysis, Note: note})
	}
	type entry struct {
		id    string
		score core.Score
		note  string
	}
	entries := []entry{
		{core.MAdjustableSensitivity, ScoreAdjustableSensitivity(sw.Effect()),
			fmt.Sprintf("Type II swing %.1f pts, Type I swing %.2f pts across sweep", sw.Effect().TypeIIRange, sw.Effect().TypeIRange)},
		{core.MDataStorage, ScoreDataStorage(storedPerMB),
			fmt.Sprintf("%.0f bytes stored per MB of source traffic", storedPerMB)},
		{core.MScalableLoadBalancing, ScoreLoadBalancing(spec.IDS.Balancer),
			fmt.Sprintf("discipline: %v across %d sensors", spec.IDS.Balancer, spec.IDS.Sensors)},
		{core.MSystemThroughput, ScoreSystemThroughput(th.ZeroLossPps),
			fmt.Sprintf("sustained %.0f pps without loss", th.ZeroLossPps)},
		{core.MAnalysisOfCompromise, ScoreCompromiseAnalysis(ev.Compromise.Coverage, len(ev.Compromise.Identified) > 0),
			fmt.Sprintf("identified %d of %d compromised hosts", len(ev.Compromise.Identified), len(ev.Compromise.TrulyCompromised))},
		{core.MErrorReporting, ScoreErrorReporting(spec.IDS, acc.SensorFailures > 0, acc.SensorFailures > 0),
			fmt.Sprintf("%v, restart=%v, console=%v", spec.IDS.FailureMode, spec.IDS.RestartAfter > 0, hasConsole)},
		{core.MFirewallInteraction, ScoreResponseChannel(hasConsole, policyHas(ids.ActionFirewallBlock), acc.FirewallBlocks, acc.FilteredPackets > 0),
			fmt.Sprintf("%d blocks, %d packets filtered", acc.FirewallBlocks, acc.FilteredPackets)},
		{core.MInducedLatency, ScoreInducedLatency(lat.Induced),
			fmt.Sprintf("induced %v mean, %v p95 (%v tap)", lat.Induced, lat.InducedP95, lat.Tap)},
		{core.MZeroLossThroughput, ScoreZeroLoss(th.ZeroLossPps),
			fmt.Sprintf("%.0f pps zero loss", th.ZeroLossPps)},
		{core.MNetworkLethalDose, ScoreLethalDose(th.LethalPps, th.Indestructible),
			lethalNote(th)},
		{core.MObservedFNRatio, ScoreFalseNegative(acc.MissRate),
			fmt.Sprintf("missed %d of %d attacks (FN ratio %.5f per transaction)", acc.ActualIncidents-acc.DetectedIncidents, acc.ActualIncidents, acc.FalseNegativeRatio)},
		{core.MObservedFPRatio, ScoreFalsePositiveRatio(acc.FalsePositiveRatio),
			fmt.Sprintf("%d false alarms over %d transactions (ratio %.5f)", acc.FalseAlarms, acc.Transactions, acc.FalsePositiveRatio)},
		{core.MOperationalImpact, ScoreOperationalImpact(imp.OverheadFraction),
			fmt.Sprintf("%.1f%% host CPU, %d deadline misses", imp.OverheadFraction*100, imp.DeadlineMisses)},
		{core.MRouterInteraction, ScoreResponseChannel(hasConsole, policyHas(ids.ActionRouterRedirect), acc.RouterRedirects, acc.RouterRedirects > 0),
			fmt.Sprintf("%d redirects", acc.RouterRedirects)},
		{core.MSNMPInteraction, ScoreResponseChannel(hasConsole, policyHas(ids.ActionSNMPTrap), acc.SNMPTraps, acc.SNMPTraps > 0),
			fmt.Sprintf("%d traps", acc.SNMPTraps)},
		{core.MTimeliness, ScoreTimeliness(acc.MeanDetectionDelay, acc.DetectedIncidents > 0),
			fmt.Sprintf("mean %v, p50 %v, p95 %v, p99 %v, max %v",
				acc.MeanDetectionDelay, acc.DelayP50, acc.DelayP95, acc.DelayP99, acc.MaxDetectionDelay)},
	}
	for _, e := range entries {
		if err := set(e.id, e.score, e.note); err != nil {
			return err
		}
	}
	return nil
}

func lethalNote(th *ThroughputResult) string {
	if th.Indestructible {
		return "no failure up to the probed ceiling"
	}
	return fmt.Sprintf("sensor failure at %.0f pps", th.LethalPps)
}

// EvaluateAll evaluates every product in the field against one registry.
// Product evaluations are independent (each owns its simulations), so
// they run concurrently on the bounded runner; results keep the input
// order, so the parallel run is bit-identical to a serial one. The
// first failing product (in field order) cancels the rest and its
// error is the one returned.
//
// Cancelling ctx (SIGINT/SIGTERM, -timeout) drains gracefully: the
// completed evaluations are returned in their field slots (nil for
// products that never finished) together with the cancellation error,
// so callers can print partial scorecards with an explicit interrupted
// banner. Non-cancellation failures return no results.
func EvaluateAll(ctx context.Context, specs []products.Spec, reg *core.Registry, opts Options) ([]*ProductEvaluation, error) {
	out := make([]*ProductEvaluation, len(specs))
	err := par.ForEach(ctx, len(specs), opts.Workers, func(ctx context.Context, i int) error {
		ev, err := EvaluateProduct(ctx, specs[i], reg, opts)
		if err != nil {
			return fmt.Errorf("eval: %s: %w", specs[i].Name, err)
		}
		out[i] = ev
		return nil
	})
	if err != nil {
		if isCancel(err) {
			return out, err
		}
		return nil, err
	}
	return out, nil
}
