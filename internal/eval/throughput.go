package eval

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/ids"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// ThroughputOptions bound the load search. Zero values take defaults
// sized for the benchmark harness; tests shrink them.
type ThroughputOptions struct {
	// Window is the sustained-load probe duration (default 300ms).
	Window time.Duration
	// LoPps / HiPps bound the search (defaults 500 / 262144).
	LoPps, HiPps float64
	// Profile supplies realistic packet content (default e-commerce).
	Profile traffic.Profile
	// Pool, when set, is installed on every probe instance (Data Pool
	// Selectability: measure capacity with the cluster's own protocols
	// excluded from analysis).
	Pool *ids.DataPool
	Seed int64
}

func (o *ThroughputOptions) applyDefaults() {
	if o.Window == 0 {
		o.Window = 300 * time.Millisecond
	}
	if o.LoPps == 0 {
		o.LoPps = 500
	}
	if o.HiPps == 0 {
		o.HiPps = 262144
	}
	if o.Profile.Name == "" {
		o.Profile = traffic.EcommerceEdge()
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// ThroughputResult holds the Maximal-Throughput-with-Zero-Loss and
// Network-Lethal-Dose observations.
type ThroughputResult struct {
	Product string
	// ZeroLossPps is the highest probed rate with zero sensor drops.
	ZeroLossPps float64
	// LethalPps is the lowest probed rate that killed a sensor; zero if
	// Indestructible.
	LethalPps float64
	// Indestructible means no probe up to HiPps caused a sensor failure.
	Indestructible bool
	// Probes counts load points evaluated.
	Probes int
}

// packetPool builds a reusable pool of realistically-filled packets from
// the profile. The pool matters: the paper's Lesson 1 is that throughput
// probing with meaningless payloads does not exercise payload-inspecting
// engines, so the pool is drawn from real dialogues.
func packetPool(opts ThroughputOptions, n int) ([]*packet.Packet, error) {
	sim := simtime.New(opts.Seed)
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
		Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3)},
	}
	pool := make([]*packet.Packet, 0, n)
	gen, err := traffic.NewGenerator(sim, opts.Profile, eps, nil, func(p *packet.Packet) {
		if len(pool) < n {
			pool = append(pool, p)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("eval: throughput packet pool: %w", err)
	}
	if err := fillPool(sim, &pool, n, gen.StartSession); err != nil {
		return nil, fmt.Errorf("eval: profile %q: %w", opts.Profile.Name, err)
	}
	return pool[:n], nil
}

// fillPool drives start until the pool holds n packets. Every session a
// well-formed profile plays emits at least one packet, so n sessions
// always suffice; the cap converts a zero-emission misconfiguration
// into an error instead of an infinite loop.
func fillPool(sim *simtime.Sim, pool *[]*packet.Packet, n int, start func()) error {
	for sessions := 0; len(*pool) < n; sessions++ {
		if sessions > n {
			return fmt.Errorf("packet pool stalled at %d of %d packets after %d sessions", len(*pool), n, sessions)
		}
		start()
		sim.Run()
	}
	return nil
}

// probe offers the pool at a fixed rate to a fresh product instance and
// reports drops and sensor failures.
func probe(ctx context.Context, spec products.Spec, opts ThroughputOptions, pool []*packet.Packet, pps float64) (drops uint64, failures int, err error) {
	sim := simtime.New(opts.Seed)
	bindSim(ctx, sim)
	inst, err := spec.Instantiate(sim)
	if err != nil {
		return 0, 0, err
	}
	if opts.Pool != nil {
		if err := inst.SetDataPool(opts.Pool); err != nil {
			return 0, 0, err
		}
	}
	n := int(pps * opts.Window.Seconds())
	if n < 1 {
		n = 1
	}
	gap := time.Duration(float64(opts.Window) / float64(n))
	for i := 0; i < n; i++ {
		p := pool[i%len(pool)]
		if _, err := sim.ScheduleAt(time.Duration(i)*gap, func() { inst.Ingest(p) }); err != nil {
			return 0, 0, err
		}
	}
	sim.Run()
	if err := sim.Interrupted(); err != nil {
		return 0, 0, fmt.Errorf("eval: throughput probe interrupted: %w", err)
	}
	st := inst.Stats()
	return st.SensorDropped, st.SensorFailures, nil
}

// MeasureThroughput finds the zero-loss throughput by binary search in
// log space, then ramps upward to find the lethal dose. Cancelling ctx
// aborts the in-flight probe at the kernel's interrupt stride and
// surfaces the cancellation error.
func MeasureThroughput(ctx context.Context, spec products.Spec, opts ThroughputOptions) (*ThroughputResult, error) {
	opts.applyDefaults()
	if opts.LoPps >= opts.HiPps {
		return nil, fmt.Errorf("eval: throughput bounds inverted (%v >= %v)", opts.LoPps, opts.HiPps)
	}
	pool, err := packetPool(opts, 400)
	if err != nil {
		return nil, err
	}
	res := &ThroughputResult{Product: spec.Name}

	// Establish bracket: lo must pass, hi must fail; expand/shrink as
	// needed.
	lo, hi := opts.LoPps, opts.HiPps
	dropsAt := func(pps float64) (uint64, int, error) {
		res.Probes++
		return probe(ctx, spec, opts, pool, pps)
	}
	if d, _, err := dropsAt(lo); err != nil {
		return nil, err
	} else if d > 0 {
		// Even the floor drops; report the floor as the bound.
		res.ZeroLossPps = 0
	} else {
		if d, _, err := dropsAt(hi); err != nil {
			return nil, err
		} else if d == 0 {
			// Never drops in range: zero-loss is at least hi.
			res.ZeroLossPps = hi
		} else {
			for hi/lo > 1.15 {
				mid := math.Sqrt(lo * hi)
				d, _, err := dropsAt(mid)
				if err != nil {
					return nil, err
				}
				if d == 0 {
					lo = mid
				} else {
					hi = mid
				}
			}
			res.ZeroLossPps = lo
		}
	}

	// Lethal dose: ramp from max(zero-loss, floor) upward.
	rate := res.ZeroLossPps
	if rate < opts.LoPps {
		rate = opts.LoPps
	}
	res.Indestructible = true
	for rate <= opts.HiPps {
		_, failures, err := dropsAt(rate)
		if err != nil {
			return nil, err
		}
		if failures > 0 {
			res.LethalPps = rate
			res.Indestructible = false
			break
		}
		rate *= 1.6
	}
	return res, nil
}
