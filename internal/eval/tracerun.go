package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/ids"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/trace"
)

// RunTraceAccuracy replays a canned trace (Lesson 2) against a product
// and scores the monitor's reports against the trace's ground-truth
// sidecar. The product first trains on live clean background for
// trainFor, then the entire trace is replayed through the testbed hosts.
// Cancelling ctx halts the replay at the kernel's interrupt stride.
func RunTraceAccuracy(ctx context.Context, spec products.Spec, tr *trace.Trace, sensitivity float64, trainFor time.Duration, seed int64) (*AccuracyResult, error) {
	if len(tr.Records) == 0 {
		return nil, fmt.Errorf("eval: empty trace")
	}
	// Size the testbed to cover every address the trace uses.
	maxCluster, maxExternal := 0, 0
	for _, rec := range tr.Records {
		for _, a := range []packet.Addr{rec.Pk.Src, rec.Pk.Dst} {
			o1, o2, o3, o4 := a.Octets()
			idx := int(o3-1)*250 + int(o4-1)
			switch {
			case o1 == 10 && o2 == 1 && idx >= maxCluster:
				maxCluster = idx + 1
			case o1 == 203 && o2 == 0 && idx >= maxExternal:
				maxExternal = idx + 1
			}
		}
	}
	tb, err := NewTestbed(spec, TestbedConfig{
		Seed: seed, TrainFor: trainFor,
		ClusterHosts: maxCluster, ExternalHosts: maxExternal,
	})
	if err != nil {
		return nil, err
	}
	tb.Bind(ctx)
	if err := tb.Train(); err != nil {
		return nil, err
	}
	if err := tb.IDS.SetSensitivity(sensitivity); err != nil {
		return nil, err
	}
	replayStart := tb.Sim.Now()
	if err := trace.Replay(tb.Sim, tr, replayStart, 1, tb.inject); err != nil {
		return nil, err
	}
	tb.Drain()
	if err := tb.Interrupted(); err != nil {
		return nil, err
	}
	tb.IDS.Flush()

	// Conversations (canonical flows) approximate the trace's transaction
	// count; the background generator's own sessions during training are
	// excluded on purpose — the measured period is the replay.
	convs := make(map[packet.FlowKey]bool)
	for _, rec := range tr.Records {
		if !rec.Pk.Truth.Malicious {
			convs[rec.Pk.Key().Canonical()] = true
		}
	}

	res, err := scoreTraceAccuracy(tb, sensitivity,
		shiftIncidents(tr.Incidents, tr.Records[0].At, replayStart), convs)
	if err != nil {
		return nil, err
	}
	return res, nil
}

// RunTraceAccuracyStream is RunTraceAccuracy for a streamed IDT2 trace:
// the testbed is sized from the stream's footer statistics, chunks are
// decoded one ahead of the replay clock on an internal/par worker, and
// peak memory is O(chunk) instead of O(capture). Results are identical
// to loading the same records through RunTraceAccuracy. The reader must
// be indexed (opened on a seekable source), since sizing and ground
// truth are needed before the first chunk replays.
//
// When reg is non-nil, the run is instrumented: wall-clock stage spans
// ("replay.setup" / "replay.train" / "replay.replay" / "replay.score"),
// decoder counters on rd, and the full testbed component telemetry.
// The scored result is bit-identical with reg set or nil.
func RunTraceAccuracyStream(ctx context.Context, spec products.Spec, rd *trace.Reader, sensitivity float64, trainFor time.Duration, seed int64, reg *obs.Registry) (*AccuracyResult, error) {
	st, ok := rd.Stats()
	if !ok {
		return nil, fmt.Errorf("eval: streaming accuracy needs an indexed trace (seekable IDT2 source)")
	}
	if st.Packets == 0 {
		return nil, fmt.Errorf("eval: empty trace")
	}
	rd.SetObs(reg)
	sp := reg.StartSpan("replay.setup")
	tb, err := NewTestbed(spec, TestbedConfig{
		Seed: seed, TrainFor: trainFor,
		ClusterHosts: st.ClusterHosts, ExternalHosts: st.ExternalHosts,
		Obs: reg,
	})
	if err != nil {
		return nil, err
	}
	tb.Bind(ctx)
	sp.End()
	sp = reg.StartSpan("replay.train")
	if err := tb.Train(); err != nil {
		return nil, err
	}
	if err := tb.IDS.SetSensitivity(sensitivity); err != nil {
		return nil, err
	}
	sp.End()

	sp = reg.StartSpan("replay.replay")
	replayStart := tb.Sim.Now()
	convs := make(map[packet.FlowKey]bool)
	emit := func(p *packet.Packet) {
		if !p.Truth.Malicious {
			convs[p.Key().Canonical()] = true
		}
		tb.inject(p)
	}
	pr := trace.NewPipelinedReader(rd, 2)
	defer pr.Close()
	rs, err := trace.ReplayReader(tb.Sim, pr, replayStart, 1, emit)
	if err != nil {
		return nil, err
	}
	tb.Drain()
	if err := rs.Err(); err != nil {
		return nil, err
	}
	if err := tb.Interrupted(); err != nil {
		return nil, err
	}
	tb.IDS.Flush()
	sp.End()

	sp = reg.StartSpan("replay.score")
	res, err := scoreTraceAccuracy(tb, sensitivity,
		shiftIncidents(rd.Incidents(), st.FirstAt, replayStart), convs)
	sp.End()
	return res, err
}

// shiftIncidents rebases ground-truth times from the trace's own
// timeline onto the replay clock.
func shiftIncidents(incs []attack.Incident, base, replayStart time.Duration) []attack.Incident {
	shifted := make([]attack.Incident, len(incs))
	for i, inc := range incs {
		inc.Start = inc.Start - base + replayStart
		shifted[i] = inc
	}
	return shifted
}

// scoreTraceAccuracy mirrors scoreAccuracy but takes truth from a trace
// sidecar and estimates |T| from the trace's conversation count (convs,
// the canonical flow keys of the trace's clean packets).
func scoreTraceAccuracy(tb *Testbed, sensitivity float64, truth []attack.Incident, convs map[packet.FlowKey]bool) (*AccuracyResult, error) {
	reports := tb.IDS.Monitor().Incidents
	res := &AccuracyResult{
		Product:           tb.Spec.Name,
		Sensitivity:       sensitivity,
		ActualIncidents:   len(truth),
		ReportedIncidents: len(reports),
		ByTechnique:       make(map[string]bool),
		Transactions:      len(convs) + len(truth),
		TruthIncidents:    truth,
		compromisedTruth:  make(map[uint32]bool),
		compromisedFound:  make(map[uint32]bool),
	}
	if res.Transactions == 0 {
		return nil, fmt.Errorf("eval: trace has no transactions")
	}
	matched := make(map[*ids.ReportedIncident]bool)
	var delays []time.Duration
	for _, inc := range truth {
		detected := false
		var first time.Duration = -1
		for _, rep := range reports {
			if matches(rep, inc) {
				matched[rep] = true
				detected = true
				if first < 0 || rep.ReportedAt < first {
					first = rep.ReportedAt
				}
			}
		}
		res.ByTechnique[inc.Technique] = res.ByTechnique[inc.Technique] || detected
		if detected {
			res.DetectedIncidents++
			d := first - inc.Start
			if d < 0 {
				d = 0
			}
			delays = append(delays, d)
		}
	}
	for _, rep := range reports {
		if !matched[rep] {
			res.FalseAlarms++
		}
	}
	missed := res.ActualIncidents - res.DetectedIncidents
	res.FalsePositiveRatio = float64(res.FalseAlarms) / float64(res.Transactions)
	res.FalseNegativeRatio = float64(missed) / float64(res.Transactions)
	if res.ActualIncidents > 0 {
		res.MissRate = float64(missed) / float64(res.ActualIncidents)
		res.DetectionRate = 1 - res.MissRate
	}
	for _, d := range delays {
		res.MeanDetectionDelay += d
		if d > res.MaxDetectionDelay {
			res.MaxDetectionDelay = d
		}
	}
	if len(delays) > 0 {
		res.MeanDetectionDelay /= time.Duration(len(delays))
	}
	res.DelayP50, res.DelayP95, res.DelayP99, res.DelayHist = delayStats(delays)
	if c := tb.IDS.Console(); c != nil {
		res.FirewallBlocks = len(c.Firewall.BlockEvents)
		res.RouterRedirects = len(c.Redirects)
		res.SNMPTraps = len(c.SNMPTraps)
		res.FilteredPackets = c.Firewall.FilteredPackets
	}
	st := tb.IDS.Stats()
	res.SensorDrops = st.SensorDropped
	res.SensorFailures = st.SensorFailures
	res.StorageBytes = st.StorageBytes
	res.TapDrops = tb.MirrorDrops()
	res.IngestedPkts = st.Ingested
	res.ProcessedPkts = st.Processed
	res.Notifications = st.Notifications
	res.SensorBusy = st.SensorBusy
	res.Profiles = tb.IDS.Monitor().IntentReport()
	return res, nil
}
