package eval

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/simtime"
)

// PlacementResult compares sensor placements on the segmented topology:
// a single central SPAN at the distribution switch versus one sensor per
// subnet. Visibility is counted over labeled attack packets, separating
// a north-south exploit from an intra-subnet insider pull.
type PlacementResult struct {
	// CentralSawExploit / CentralSawInsider: central SPAN visibility.
	CentralSawExploit bool
	CentralSawInsider bool
	// LeafSawExploit / LeafSawInsider: any per-subnet sensor's visibility.
	LeafSawExploit bool
	LeafSawInsider bool
	// CentralPackets / LeafPackets count attack packets observed.
	CentralPackets uint64
	LeafPackets    uint64
}

// attackVisibility runs a fixed two-attack script over the segmented
// topology with the given tap attachment and reports what was seen.
func attackVisibility(seed int64, attach func(top *netsim.SegmentedTopology, counter func(p *packet.Packet))) (sawExploit, sawInsider bool, packets uint64) {
	sim := simtime.New(seed)
	top := netsim.BuildSegmentedTopology(sim, netsim.SegmentedConfig{Subnets: 2, HostsPerSubnet: 2, ExternalHosts: 1})
	var exploitSeen, insiderSeen bool
	var count uint64
	attach(top, func(p *packet.Packet) {
		if !p.Truth.Malicious {
			return
		}
		count++
		switch p.Truth.Technique {
		case "exploit":
			exploitSeen = true
		case "insider-misuse":
			insiderSeen = true
		}
	})

	// North-south exploit: external host to subnet 0.
	ext := top.External[0]
	victim := top.Segment[0][0]
	sim.MustSchedule(time.Millisecond, func() {
		ext.Send(&packet.Packet{
			Dst: victim.Addr(), SrcPort: 4000, DstPort: 80, Proto: packet.ProtoTCP,
			Flags:   packet.ACK | packet.PSH,
			Payload: []byte("GET /cgi-bin/phf?x HTTP/1.0\r\n\r\n"),
			Truth:   packet.Label{Malicious: true, AttackID: "a1", Technique: "exploit"},
		})
	})
	// Intra-subnet insider: host to host on the same leaf, never leaving
	// the leaf switch.
	insider := top.Segment[1][0]
	target := top.Segment[1][1]
	sim.MustSchedule(2*time.Millisecond, func() {
		insider.Send(&packet.Packet{
			Dst: target.Addr(), SrcPort: 4001, DstPort: 514, Proto: packet.ProtoTCP,
			Flags:   packet.ACK | packet.PSH,
			Payload: []byte("cat /etc/shadow\n"),
			Truth:   packet.Label{Malicious: true, AttackID: "a2", Technique: "insider-misuse"},
		})
	})
	sim.Run()
	return exploitSeen, insiderSeen, count
}

// MeasurePlacement runs the visibility comparison. The structural result
// the paper's placement warning predicts: the central sensor is blind to
// intra-subnet insider traffic; per-subnet placement sees it.
func MeasurePlacement(seed int64) *PlacementResult {
	res := &PlacementResult{}
	res.CentralSawExploit, res.CentralSawInsider, res.CentralPackets = attackVisibility(seed,
		func(top *netsim.SegmentedTopology, counter func(p *packet.Packet)) {
			sink := netsim.NewSink("central")
			sink.OnPacket = counter
			top.AttachDistMirror(sink, netsim.LinkConfig{BandwidthBps: 10e9})
		})
	res.LeafSawExploit, res.LeafSawInsider, res.LeafPackets = attackVisibility(seed,
		func(top *netsim.SegmentedTopology, counter func(p *packet.Packet)) {
			for i := range top.Leaves {
				sink := netsim.NewSink("leaf-sensor")
				sink.OnPacket = counter
				// Errors impossible: i ranges over existing leaves.
				_, _ = top.AttachLeafMirror(i, sink, netsim.LinkConfig{BandwidthBps: 10e9})
			}
		})
	return res
}
