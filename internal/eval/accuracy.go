package eval

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/attack"
	"repro/internal/ids"
	"repro/internal/obs"
)

// AccuracyResult holds the Figure-3 accuracy observations for one run.
type AccuracyResult struct {
	Product     string
	Sensitivity float64

	// Transactions is |T|: background sessions plus attack incidents.
	Transactions int
	// ActualIncidents is |A|.
	ActualIncidents int
	// DetectedIncidents is how many actual incidents were matched by at
	// least one reported incident.
	DetectedIncidents int
	// FalseAlarms is the number of reported incidents matching no actual
	// incident.
	FalseAlarms int
	// ReportedIncidents is the total the monitor recorded.
	ReportedIncidents int

	// FalsePositiveRatio is |D−A|/|T| per Figure 3.
	FalsePositiveRatio float64
	// FalseNegativeRatio is |A−D|/|T| per Figure 3.
	FalseNegativeRatio float64
	// MissRate is |A−D|/|A| (the per-attack view used for scoring).
	MissRate float64
	// DetectionRate is 1−MissRate.
	DetectionRate float64

	// Timeliness. The percentiles are histogram-backed (see delayStats):
	// the same estimator the telemetry subsystem exports, computed from
	// detection delays on the sim clock.
	MeanDetectionDelay time.Duration
	MaxDetectionDelay  time.Duration
	DelayP50           time.Duration
	DelayP95           time.Duration
	DelayP99           time.Duration
	// DelayHist is the full detection-delay distribution (nil when
	// nothing was detected).
	DelayHist *obs.HistSnap

	// ByTechnique maps technique -> detected? for the report.
	ByTechnique map[string]bool

	// Response effectiveness observed during the run.
	FirewallBlocks  int
	RouterRedirects int
	SNMPTraps       int
	FilteredPackets uint64

	// Pipeline health.
	SensorDrops    uint64
	SensorFailures int
	StorageBytes   uint64
	IngestedBytes  uint64
	// Telemetry-grade pipeline quantities (see eval.Telemetry).
	TapDrops      uint64 // mirror-link losses (packets the IDS never saw)
	IngestedPkts  uint64
	ProcessedPkts uint64
	Notifications int
	// SensorBusy is summed engine processing time (sim clock), the
	// denominator of scan throughput.
	SensorBusy time.Duration

	// TruthIncidents retains the ground truth the run was scored
	// against, for downstream experiments (human dimension, reports).
	TruthIncidents []attack.Incident
	// Profiles is the analyzer's second-order per-attacker intent
	// analysis (Analysis of Intruder Intent capability).
	Profiles []*ids.AttackerProfile

	// Compromise bookkeeping for AnalyzeCompromise: cluster addresses
	// ground truth marks compromised, and those the product's reports
	// named.
	compromisedTruth map[uint32]bool
	compromisedFound map[uint32]bool
}

// matchWindow pads incident activity windows when matching reports.
const matchWindow = 6 * time.Second

// matches reports whether a reported incident plausibly refers to the
// ground-truth incident: endpoint overlap plus temporal overlap.
func matches(rep *ids.ReportedIncident, inc attack.Incident) bool {
	// Both endpoints must match, in either orientation: detectors that
	// alert on a response packet attribute the conversation reversed.
	// Multi-victim incidents (zero Victim, e.g. a ping sweep) match on
	// the attacker alone.
	var endpointHit bool
	if inc.Victim == 0 {
		endpointHit = rep.Attacker == inc.Attacker || rep.Victim == inc.Attacker
	} else {
		endpointHit = (rep.Attacker == inc.Attacker && rep.Victim == inc.Victim) ||
			(rep.Attacker == inc.Victim && rep.Victim == inc.Attacker)
	}
	if !endpointHit {
		return false
	}
	start := inc.Start - time.Second
	end := inc.Start + inc.Duration + matchWindow
	return rep.FirstAlert <= end && rep.LastAlert >= start
}

// RunAccuracy performs one full accuracy experiment: train on clean
// traffic, then run background plus the standard campaign for attackFor,
// then match monitor incidents against ground truth.
func RunAccuracy(tb *Testbed, sensitivity float64, attackFor time.Duration, strength attack.Intensity) (*AccuracyResult, error) {
	if err := validateTapMode(tb.Cfg.Tap); err != nil {
		return nil, err
	}
	if err := tb.Train(); err != nil {
		return nil, err
	}
	if err := tb.IDS.SetSensitivity(sensitivity); err != nil {
		return nil, err
	}
	start := tb.Sim.Now()
	camp := attack.NewCampaign(tb.AttackContext())
	if err := camp.SpreadAcross(start+2*time.Second, attackFor-4*time.Second, attack.StandardScenarios(strength)); err != nil {
		return nil, err
	}
	tb.Sim.RunUntil(start + attackFor)
	tb.Drain()
	if err := tb.Interrupted(); err != nil {
		return nil, err
	}
	tb.IDS.Flush()
	return scoreAccuracy(tb, sensitivity, camp)
}

// scoreAccuracy matches reports to truth and computes the Figure-3
// ratios.
func scoreAccuracy(tb *Testbed, sensitivity float64, camp *attack.Campaign) (*AccuracyResult, error) {
	truth := camp.Incidents()
	reports := tb.IDS.Monitor().Incidents

	res := &AccuracyResult{
		Product:           tb.Spec.Name,
		Sensitivity:       sensitivity,
		ActualIncidents:   len(truth),
		ReportedIncidents: len(reports),
		ByTechnique:       make(map[string]bool),
	}
	res.Transactions = int(tb.Gen.SessionsStarted) + len(truth)
	res.TruthIncidents = truth
	if res.Transactions == 0 {
		return nil, fmt.Errorf("eval: empty run — no transactions")
	}

	res.compromisedTruth = make(map[uint32]bool)
	res.compromisedFound = make(map[uint32]bool)

	matchedReport := make(map[*ids.ReportedIncident]bool)
	var delays []time.Duration
	for _, inc := range truth {
		compromise := inc.Technique == attack.TechInsider || inc.Technique == attack.TechMasquerade
		if compromise {
			if inc.Technique == attack.TechInsider {
				res.compromisedTruth[uint32(inc.Attacker)] = true
			}
			res.compromisedTruth[uint32(inc.Victim)] = true
		}
		detected := false
		var firstReport time.Duration = -1
		for _, rep := range reports {
			if matches(rep, inc) {
				matchedReport[rep] = true
				detected = true
				if firstReport < 0 || rep.ReportedAt < firstReport {
					firstReport = rep.ReportedAt
				}
				if compromise {
					for _, a := range []uint32{uint32(rep.Attacker), uint32(rep.Victim)} {
						if res.compromisedTruth[a] {
							res.compromisedFound[a] = true
						}
					}
				}
			}
		}
		res.ByTechnique[inc.Technique] = res.ByTechnique[inc.Technique] || detected
		if detected {
			res.DetectedIncidents++
			delay := firstReport - inc.Start
			if delay < 0 {
				delay = 0
			}
			delays = append(delays, delay)
		}
	}
	for _, rep := range reports {
		if !matchedReport[rep] {
			res.FalseAlarms++
		}
	}

	missed := res.ActualIncidents - res.DetectedIncidents
	res.FalsePositiveRatio = float64(res.FalseAlarms) / float64(res.Transactions)
	res.FalseNegativeRatio = float64(missed) / float64(res.Transactions)
	if res.ActualIncidents > 0 {
		res.MissRate = float64(missed) / float64(res.ActualIncidents)
		res.DetectionRate = 1 - res.MissRate
	}
	if len(delays) > 0 {
		var sum time.Duration
		for _, d := range delays {
			sum += d
			if d > res.MaxDetectionDelay {
				res.MaxDetectionDelay = d
			}
		}
		res.MeanDetectionDelay = sum / time.Duration(len(delays))
	}
	res.DelayP50, res.DelayP95, res.DelayP99, res.DelayHist = delayStats(delays)

	if c := tb.IDS.Console(); c != nil {
		res.FirewallBlocks = len(c.Firewall.BlockEvents)
		res.RouterRedirects = len(c.Redirects)
		res.SNMPTraps = len(c.SNMPTraps)
		res.FilteredPackets = c.Firewall.FilteredPackets
	}
	st := tb.IDS.Stats()
	res.SensorDrops = st.SensorDropped
	res.SensorFailures = st.SensorFailures
	res.StorageBytes = st.StorageBytes
	res.IngestedBytes = tb.Gen.BytesEmitted
	res.TapDrops = tb.MirrorDrops()
	res.IngestedPkts = st.Ingested
	res.ProcessedPkts = st.Processed
	res.Notifications = st.Notifications
	res.SensorBusy = st.SensorBusy
	res.Profiles = tb.IDS.Monitor().IntentReport()
	return res, nil
}

// Techniques returns the run's technique outcomes sorted by name.
func (r *AccuracyResult) Techniques() []string {
	out := make([]string, 0, len(r.ByTechnique))
	for t := range r.ByTechnique {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
