package eval

// Misconfiguration tests for the throughput harness: a bad setup must
// surface as a construction-time error, never a panic or a hang.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/simtime"
)

func TestPacketPoolFillsFromProfile(t *testing.T) {
	opts := ThroughputOptions{}
	opts.applyDefaults()
	pool, err := packetPool(opts, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool) != 25 {
		t.Fatalf("pool has %d packets, want 25", len(pool))
	}
	payloads := 0
	for _, p := range pool {
		if len(p.Payload) > 0 {
			payloads++
		}
	}
	if payloads == 0 {
		t.Fatal("pool carries no payloads; throughput probing would not exercise inspection engines")
	}
}

func TestFillPoolStallGuard(t *testing.T) {
	// A session source that emits nothing must trip the cap with an
	// error instead of spinning forever.
	sim := simtime.New(1)
	var pool []*packet.Packet
	err := fillPool(sim, &pool, 10, func() {})
	if err == nil {
		t.Fatal("zero-emission source filled the pool")
	}
	if !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestMeasureThroughputInvertedBounds(t *testing.T) {
	_, err := MeasureThroughput(context.Background(), products.TrueSecure(), ThroughputOptions{LoPps: 1000, HiPps: 500})
	if err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if !strings.Contains(err.Error(), "bounds inverted") {
		t.Fatalf("unexpected error: %v", err)
	}
}
