package eval

import (
	"context"
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/faults"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/products"
)

// This file runs the fault-injection experiments: one accuracy run under
// a declarative fault scenario (RunFaultScenario) and the severity sweep
// that traces a product's degradation curve (FaultSweep). The curves are
// the measured evidence behind the paper's class-2 architectural metrics
// that ordinary runs cannot observe: survivability (how much detection
// capability remains when the product's own parts fail) and graceful
// degradation (whether capability decays smoothly with fault severity or
// falls off a cliff).
//
// Determinism contract: an empty scenario takes the exact RunAccuracy
// code path — no resilience layer, no injector events — so its output is
// byte-identical to a run without the fault harness (pinned by
// TestNoFaultDeterminism). A non-empty scenario adds only fixed-time
// injector events; identical seed + scenario + severity reproduce the
// run byte for byte.

// FaultRunResult is one accuracy run under a fault scenario.
type FaultRunResult struct {
	// Severity is the sweep knob in [0,1] this run was injected at.
	Severity float64
	// Accuracy is the full accuracy result, scored exactly as a clean run.
	Accuracy *AccuracyResult
	// Applied lists every fault the injector scheduled.
	Applied []faults.Applied

	// Pipeline fault accounting (see ids.Stats): every alert that failed
	// to traverse is in exactly one bucket.
	AlertsLost     uint64
	AlertsDropped  uint64
	SpoolDelivered uint64
	MgmtDropped    uint64
	SensorDowntime time.Duration
	// Resilience snapshots the self-healing layer's counters (zero when
	// the scenario did not enable it).
	Resilience ids.ResilienceStats
}

// RunFaultScenario performs one accuracy experiment with the scenario's
// faults injected, scaled by severity in [0,1]. It mirrors RunAccuracy
// step for step; the injector arms at the start of the attack phase, so
// event offsets in the scenario are relative to the end of training.
func RunFaultScenario(tb *Testbed, sc *faults.Scenario, sensitivity float64, attackFor time.Duration, strength attack.Intensity, severity float64) (*FaultRunResult, error) {
	if err := validateTapMode(tb.Cfg.Tap); err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	resilient := sc != nil && sc.Resilience && !sc.Empty()
	if resilient {
		tb.IDS.EnableResilience(ids.Resilience{})
	}
	if err := tb.Train(); err != nil {
		return nil, err
	}
	if err := tb.IDS.SetSensitivity(sensitivity); err != nil {
		return nil, err
	}
	start := tb.Sim.Now()

	inj, err := faults.NewInjector(tb.Sim, sc, severity, faults.Targets{
		Links:  tb.faultLinks(),
		IDS:    tb.IDS,
		Flight: tb.Cfg.Obs.Flight(),
	})
	if err != nil {
		return nil, err
	}
	if err := inj.Arm(); err != nil {
		return nil, err
	}
	if resilient {
		tb.IDS.StartHealthLoop()
	}

	camp := attack.NewCampaign(tb.AttackContext())
	if err := camp.SpreadAcross(start+2*time.Second, attackFor-4*time.Second, attack.StandardScenarios(strength)); err != nil {
		return nil, err
	}
	tb.Sim.RunUntil(start + attackFor)
	tb.IDS.StopHealthLoop()
	tb.Drain()
	if err := tb.Interrupted(); err != nil {
		return nil, err
	}
	tb.IDS.Flush()

	acc, err := scoreAccuracy(tb, sensitivity, camp)
	if err != nil {
		return nil, err
	}
	st := tb.IDS.Stats()
	return &FaultRunResult{
		Severity:       severity,
		Accuracy:       acc,
		Applied:        inj.Applied,
		AlertsLost:     st.AlertsLost,
		AlertsDropped:  st.AlertsDropped,
		SpoolDelivered: st.SpoolDelivered,
		MgmtDropped:    st.MgmtDropped,
		SensorDowntime: st.SensorDowntime,
		Resilience:     tb.IDS.ResilienceStats(),
	}, nil
}

// faultLinks names the injectable links of this testbed for scenario
// targets: the SPAN feed ("span", mirror mode only) and the two trunks.
func (tb *Testbed) faultLinks() map[string]*netsim.Link {
	links := map[string]*netsim.Link{}
	if l := tb.MirrorLink(); l != nil {
		links["span"] = l
	}
	if l := tb.Top.TrunkLink(); l != nil {
		links["lan-trunk"] = l
	}
	if l := tb.Top.ExtTrunkLink(); l != nil {
		links["ext-trunk"] = l
	}
	return links
}

// FaultSweepOptions sizes a severity sweep.
type FaultSweepOptions struct {
	Seed        int64
	Points      int     // severity steps from 0 to 1 inclusive (default 5)
	Sensitivity float64 // detection sensitivity (default 0.5)
	TrainFor    time.Duration
	AttackFor   time.Duration // default 45s
	Pps         float64
	Strength    attack.Intensity
	// Workers bounds the sweep's worker pool: 0 sizes it to the machine,
	// 1 forces the serial path (the determinism reference).
	Workers int
	// Obs, when non-nil, instruments every point's testbed with one
	// shared registry (counters aggregate across severities) and routes
	// fault onsets into its flight recorder. Observation only: the sweep
	// is bit-identical with or without it.
	Obs *obs.Registry
}

func (o *FaultSweepOptions) applyDefaults() {
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Points == 0 {
		o.Points = 5
	}
	if o.Sensitivity == 0 {
		o.Sensitivity = 0.5
	}
	if o.AttackFor == 0 {
		o.AttackFor = 45 * time.Second
	}
	if o.Strength == 0 {
		o.Strength = 1
	}
}

// FaultSweepResult is one product's degradation curve: the same seed and
// scenario at increasing severity.
type FaultSweepResult struct {
	Product  string
	Scenario *faults.Scenario
	Points   []*FaultRunResult
}

// FaultSweep runs the scenario at Points severities spaced evenly across
// [0,1], each on a fresh testbed with the same seed, so severity is the
// only varying factor. Point 0 (severity 0) is the clean baseline the
// curve is normalized against. Points are independent simulations and
// fan out across the shared bounded runner; results assemble in index
// order, so the parallel sweep is bit-identical to a serial one.
//
// Cancelling ctx halts in-flight points at the kernel's interrupt
// stride and skips unstarted ones; the partial curve (nil entries for
// points that never completed) is returned alongside the cancellation
// error so callers can report progress. Any other failure returns no
// result.
func FaultSweep(ctx context.Context, spec products.Spec, sc *faults.Scenario, opts FaultSweepOptions) (*FaultSweepResult, error) {
	opts.applyDefaults()
	if opts.Points < 2 {
		return nil, fmt.Errorf("eval: fault sweep needs at least 2 points, got %d", opts.Points)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	points := make([]*FaultRunResult, opts.Points)
	err := par.ForEach(ctx, opts.Points, opts.Workers, func(ctx context.Context, i int) error {
		res, err := FaultPointAt(ctx, spec, sc, opts, i)
		if err != nil {
			return err
		}
		points[i] = res
		return nil
	})
	if err != nil {
		if isCancel(err) {
			return &FaultSweepResult{Product: spec.Name, Scenario: sc, Points: points}, err
		}
		return nil, err
	}
	return &FaultSweepResult{Product: spec.Name, Scenario: sc, Points: points}, nil
}

// FaultPointAt runs the scenario at the i-th severity step
// (i/(Points-1)) on a fresh testbed. It is the unit of work a campaign
// journals and resumes individually: the point produced here is
// bit-identical to the same index of a full FaultSweep with the same
// options.
func FaultPointAt(ctx context.Context, spec products.Spec, sc *faults.Scenario, opts FaultSweepOptions, i int) (*FaultRunResult, error) {
	opts.applyDefaults()
	if i < 0 || i >= opts.Points {
		return nil, fmt.Errorf("eval: fault point %d out of range [0,%d)", i, opts.Points)
	}
	sev := float64(i) / float64(opts.Points-1)
	tb, err := NewTestbed(spec, TestbedConfig{
		Seed: opts.Seed, TrainFor: opts.TrainFor, BackgroundPps: opts.Pps,
		Obs: opts.Obs,
	})
	if err != nil {
		return nil, err
	}
	tb.Bind(ctx)
	return RunFaultScenario(tb, sc, opts.Sensitivity, opts.AttackFor, opts.Strength, sev)
}

// BaselineDetection is the severity-0 detection rate the curve is
// normalized against.
func (s *FaultSweepResult) BaselineDetection() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[0].Accuracy.DetectionRate
}

// Retention is detection capability remaining at full severity as a
// fraction of baseline — the survivability observation. A product that
// detected nothing clean retains nothing.
func (s *FaultSweepResult) Retention() float64 {
	base := s.BaselineDetection()
	if base <= 0 || len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].Accuracy.DetectionRate / base
}

// MaxStepDrop is the largest detection-rate fall between adjacent
// severity steps, normalized by baseline — the graceful-degradation
// observation (small steps = smooth decay, one big step = a cliff).
func (s *FaultSweepResult) MaxStepDrop() float64 {
	base := s.BaselineDetection()
	if base <= 0 {
		return 0
	}
	var worst float64
	for i := 1; i < len(s.Points); i++ {
		d := (s.Points[i-1].Accuracy.DetectionRate - s.Points[i].Accuracy.DetectionRate) / base
		if d > worst {
			worst = d
		}
	}
	return worst
}

// Publish writes the sweep's survivability evidence into reg as
// "scorecard.*" gauges, alongside the class-3 quantities Telemetry
// publishes. Ratios are in parts per million to stay integral. No-op on
// a nil registry.
func (s *FaultSweepResult) Publish(reg *obs.Registry) {
	if s == nil || reg == nil || len(s.Points) == 0 {
		return
	}
	last := s.Points[len(s.Points)-1]
	reg.Gauge("scorecard.survivability_retention_ppm").Set(int64(s.Retention() * 1e6))
	reg.Gauge("scorecard.degradation_max_step_ppm").Set(int64(s.MaxStepDrop() * 1e6))
	reg.Gauge("scorecard.survivability_score").Set(int64(ScoreSurvivability(s.Retention())))
	reg.Gauge("scorecard.graceful_degradation_score").Set(int64(ScoreGracefulDegradation(s.MaxStepDrop())))
	reg.Gauge("scorecard.fault_alerts_lost").Set(int64(last.AlertsLost))
	reg.Gauge("scorecard.fault_alerts_dropped").Set(int64(last.AlertsDropped))
	reg.Gauge("scorecard.fault_spool_delivered").Set(int64(last.SpoolDelivered))
	reg.Gauge("scorecard.fault_mgmt_dropped").Set(int64(last.MgmtDropped))
	reg.Gauge("scorecard.fault_sensor_downtime_ns").Set(int64(last.SensorDowntime))
}
