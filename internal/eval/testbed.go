// Package eval is the measurement harness: it runs the experiments that
// observe every performance and measurable architectural metric the paper
// defines, maps raw observations onto the discrete 0–4 scorecard scale,
// and assembles complete scorecards for the product field. Each
// experiment corresponds to a metric of Table 2/3 or a figure of the
// paper; see DESIGN.md's experiment index.
package eval

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/par"

	"repro/internal/attack"
	"repro/internal/hostmon"
	"repro/internal/ids"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/rts"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// TapMode is how the IDS observes traffic.
type TapMode int

// Tap modes.
const (
	// TapMirror feeds the IDS a SPAN copy (passive; production traffic
	// unaffected).
	TapMirror TapMode = iota
	// TapInline splices the IDS into the router<->LAN trunk so its
	// processing delays — and its response filtering — affect traffic.
	TapInline
)

// String names the mode.
func (m TapMode) String() string {
	if m == TapInline {
		return "inline"
	}
	return "mirror"
}

// TestbedConfig parameterizes a full testbed run.
type TestbedConfig struct {
	Seed          int64
	ClusterHosts  int // default 6
	ExternalHosts int // default 3
	Profile       traffic.Profile
	Tap           TapMode
	// TrainFor is the clean-traffic baseline window.
	TrainFor time.Duration
	// BackgroundPps is the offered background load.
	BackgroundPps float64
	// Obs, when non-nil, wires telemetry through every component of the
	// testbed (topology links/switches, the IDS pipeline). Telemetry
	// observes and never perturbs: results are bit-identical with Obs
	// set or nil (the determinism guard test pins this).
	Obs *obs.Registry
}

func (c *TestbedConfig) applyDefaults() {
	if c.ClusterHosts == 0 {
		c.ClusterHosts = 6
	}
	if c.ExternalHosts == 0 {
		c.ExternalHosts = 3
	}
	if c.Profile.Name == "" {
		c.Profile = traffic.EcommerceEdge()
	}
	if c.TrainFor == 0 {
		c.TrainFor = 20 * time.Second
	}
	if c.BackgroundPps == 0 {
		c.BackgroundPps = 600
	}
}

// Testbed is one assembled run environment: topology, product IDS,
// generators, host agents, and the campaign context.
type Testbed struct {
	Sim  *simtime.Sim
	Top  *netsim.Topology
	IDS  *ids.IDS
	Gen  *traffic.Generator
	Spec products.Spec
	Cfg  TestbedConfig

	hostsByAddr map[packet.Addr]*netsim.Host
	seq         *packet.SeqCounter
	agents      []*hostmon.Agent
	rtsHosts    []*rts.Host
	training    bool

	// TapDropped counts mirror-link losses (packets the IDS never saw).
	mirrorLink *netsim.Link
	mirrorSink *netsim.Sink
}

// NewTestbed assembles the environment for one product.
func NewTestbed(spec products.Spec, cfg TestbedConfig) (*Testbed, error) {
	cfg.applyDefaults()
	sim := simtime.New(cfg.Seed)
	top := netsim.BuildTopology(sim, netsim.TopologyConfig{
		ClusterHosts:  cfg.ClusterHosts,
		ExternalHosts: cfg.ExternalHosts,
	})
	if err := top.Validate(); err != nil {
		return nil, fmt.Errorf("eval: testbed topology: %w", err)
	}
	top.Instrument(cfg.Obs)
	inst, err := spec.Instantiate(sim)
	if err != nil {
		return nil, err
	}
	inst.Instrument(cfg.Obs)
	tb := &Testbed{
		Sim: sim, Top: top, IDS: inst, Spec: spec, Cfg: cfg,
		hostsByAddr: make(map[packet.Addr]*netsim.Host),
		seq:         &packet.SeqCounter{},
	}
	for _, h := range append(append([]*netsim.Host{}, top.Cluster...), top.External...) {
		tb.hostsByAddr[h.Addr()] = h
	}

	// Attach the tap.
	switch cfg.Tap {
	case TapInline:
		dev := netsim.NewInlineDevice(sim, spec.Name+"-inline", tb.meanInspectCost())
		dev.Process = func(p *packet.Packet) bool { return tb.offer(p) }
		top.InsertInline(dev, netsim.LinkConfig{})
	default:
		sink := netsim.NewSink(spec.Name + "-tap")
		sink.OnPacket = func(p *packet.Packet) { tb.offer(p) }
		tb.mirrorSink = sink
		tb.mirrorLink = top.AttachMirror(sink, netsim.LinkConfig{BandwidthBps: 10e9})
	}

	// Host agents on every cluster host, reporting into the product's
	// first analyzer; each agent charges an rts host model.
	if spec.HostAgents {
		for i, h := range top.Cluster {
			rh := rts.NewHost(sim, h.Name())
			for _, task := range rts.StandardTaskSet() {
				if err := rh.AddTask(task); err != nil {
					return nil, err
				}
			}
			agent := hostmon.NewAgent(sim, rh, spec.HostAgentLevel)
			agent.Deliver = inst.Analyzers()[0].Submit
			tb.agents = append(tb.agents, agent)
			tb.rtsHosts = append(tb.rtsHosts, rh)
			idx := i
			prev := h.OnPacket
			h.OnPacket = func(p *packet.Packet) {
				if prev != nil {
					prev(p)
				}
				if tb.training {
					return
				}
				for _, ev := range hostmon.EventsFromPacket(p, sim.Now()) {
					ev.HostIdx = idx
					agent.Observe(ev)
				}
			}
		}
	}

	// Background generator injects through the real hosts.
	gen, err := traffic.NewGenerator(sim, cfg.Profile, tb.Endpoints(), tb.seq, tb.inject)
	if err != nil {
		return nil, err
	}
	tb.Gen = gen
	return tb, nil
}

// Bind ties the testbed's simulation to ctx: the kernel consults
// ctx.Err about every interrupt stride, so cancelling ctx (SIGINT, a
// campaign watchdog, a -timeout) halts the run within a bounded number
// of events instead of at the end of the experiment. When ctx carries
// a heartbeat (par.WithHeartbeat), each consult also beats it, letting
// a stall watchdog distinguish slow-but-progressing simulations from
// wedged ones. Binding context.Background (or nil) uninstalls.
//
// Binding never perturbs results: the check touches no simulation
// state, so an uncancelled bound run is bit-identical to an unbound
// one (the telemetry determinism guard covers the shared harness).
func (tb *Testbed) Bind(ctx context.Context) {
	bindSim(ctx, tb.Sim)
}

// bindSim installs the ctx/heartbeat interrupt check on any sim.
func bindSim(ctx context.Context, sim *simtime.Sim) {
	if ctx == nil || ctx == context.Background() {
		sim.SetInterrupt(nil)
		return
	}
	beat := par.HeartbeatFrom(ctx)
	sim.SetInterrupt(func() error {
		if beat != nil {
			beat()
		}
		return ctx.Err()
	})
}

// Interrupted surfaces a cancellation that halted the bound simulation
// as an eval error. A non-nil return means the run's partial state is
// not scoreable and the experiment must be reported as interrupted.
func (tb *Testbed) Interrupted() error {
	if err := tb.Sim.Interrupted(); err != nil {
		return fmt.Errorf("eval: %s run interrupted: %w", tb.Spec.Name, err)
	}
	return nil
}

// isCancel reports whether err is (or wraps) a context cancellation or
// deadline expiry — the class of failures for which entry points hand
// back partial results instead of discarding completed work.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// meanInspectCost estimates the per-packet in-line processing cost from
// the product's engine on a typical packet.
func (tb *Testbed) meanInspectCost() time.Duration {
	e := tb.Spec.IDS.Engine()
	typical := &packet.Packet{Payload: make([]byte, 512)}
	return e.CostPerPacket(typical)
}

// OfferHook, when set, observes every tapped packet before the IDS does
// (testing and diagnostics only).
var OfferHook func(p *packet.Packet, training bool)

// offer hands a tapped packet to the IDS and returns its pass verdict.
func (tb *Testbed) offer(p *packet.Packet) bool {
	if OfferHook != nil {
		OfferHook(p, tb.training)
	}
	if tb.training {
		tb.IDS.Train(p)
		return true
	}
	return tb.IDS.Ingest(p)
}

// inject sends a generated packet from its source host.
func (tb *Testbed) inject(p *packet.Packet) {
	h, ok := tb.hostsByAddr[p.Src]
	if !ok {
		// Spoofed source outside the testbed: originate at the first
		// external host (the attacker's uplink).
		h = tb.Top.External[0]
	}
	h.Send(p)
}

// Endpoints lists the testbed's addresses for generators and campaigns.
func (tb *Testbed) Endpoints() traffic.Endpoints {
	eps := traffic.Endpoints{}
	for _, h := range tb.Top.Cluster {
		eps.Cluster = append(eps.Cluster, h.Addr())
	}
	for _, h := range tb.Top.External {
		eps.External = append(eps.External, h.Addr())
	}
	return eps
}

// AttackContext builds the campaign context sharing the testbed's
// sequence counter and injection path.
func (tb *Testbed) AttackContext() *attack.Context {
	return &attack.Context{
		Sim:  tb.Sim,
		Rng:  tb.Sim.Stream("attack"),
		Seq:  tb.seq,
		Emit: tb.inject,
		Eps:  tb.Endpoints(),
		Gen:  tb.Gen,
	}
}

// Train runs the clean-baseline phase: background traffic only, every
// tapped packet feeding engine training instead of detection.
func (tb *Testbed) Train() error {
	tb.training = true
	rate := tb.Gen.SessionRateForPps(tb.Cfg.BackgroundPps)
	if err := tb.Gen.Start(rate); err != nil {
		return err
	}
	for _, rh := range tb.rtsHosts {
		if err := rh.Start(); err != nil {
			return err
		}
	}
	tb.Sim.RunUntil(tb.Cfg.TrainFor)
	tb.training = false
	return tb.Interrupted()
}

// Drain stops all self-perpetuating sources (generator, real-time host
// tickers) and runs the simulation until the event queue empties.
func (tb *Testbed) Drain() {
	tb.Gen.Stop()
	for _, rh := range tb.rtsHosts {
		rh.Stop()
	}
	tb.Sim.Run()
}

// MirrorLink returns the SPAN link feeding the IDS tap, or nil in inline
// mode — the fault harness's "link:span" target.
func (tb *Testbed) MirrorLink() *netsim.Link { return tb.mirrorLink }

// MirrorDrops returns packets lost on the SPAN link (mirror mode only).
func (tb *Testbed) MirrorDrops() uint64 {
	if tb.mirrorLink == nil || tb.mirrorSink == nil {
		return 0
	}
	return tb.mirrorLink.StatsToward(tb.mirrorSink).Dropped
}

// Agents returns the deployed host agents.
func (tb *Testbed) Agents() []*hostmon.Agent { return tb.agents }

// RTSHosts returns the real-time host models under the agents.
func (tb *Testbed) RTSHosts() []*rts.Host { return tb.rtsHosts }

// validateTapMode guards against unknown modes in config files.
func validateTapMode(m TapMode) error {
	if m != TapMirror && m != TapInline {
		return fmt.Errorf("eval: unknown tap mode %d", m)
	}
	return nil
}
