package eval

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// LatencyResult holds the Induced Traffic Latency observation. Beyond
// the mean, each path carries histogram-backed tail percentiles — the
// quantity that matters for the paper's distributed real-time setting,
// where a deadline miss is a p99 event, not a mean event.
type LatencyResult struct {
	Product string
	Tap     TapMode
	// BaselineMean is the north-south delivery latency without any IDS.
	BaselineMean time.Duration
	// WithIDSMean is the same path with the IDS attached.
	WithIDSMean time.Duration
	// Induced is the difference of means (clamped at zero).
	Induced time.Duration
	// Probes is the measurement sample count.
	Probes int

	// Histogram-backed percentiles per path (sim time).
	BaselineP50, BaselineP95, BaselineP99 time.Duration
	WithIDSP50, WithIDSP95, WithIDSP99    time.Duration
	// InducedP95 is the p95 difference (clamped at zero) — the tail view
	// of the induced cost.
	InducedP95 time.Duration

	// BaselineHist and WithIDSHist are the full probe distributions, for
	// telemetry export.
	BaselineHist, WithIDSHist *obs.HistSnap
}

// latencyProbeCount balances precision against run time.
const latencyProbeCount = 200

// measurePathLatency sends probe packets external->cluster through the
// given topology, records each delivery latency into h, and returns the
// mean.
func measurePathLatency(sim *simtime.Sim, top *netsim.Topology, probes int, h *obs.Histogram) time.Duration {
	src := top.External[0]
	dst := top.Cluster[0]
	var total time.Duration
	var delivered int
	dst.OnPacket = func(p *packet.Packet) {
		if p.DstPort == 9999 { // probe marker port
			d := sim.Now() - p.Sent
			total += d
			h.Observe(int64(d))
			delivered++
		}
	}
	rng := sim.Stream("latency-probes")
	for i := 0; i < probes; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*5*time.Millisecond, func() {
			src.Send(&packet.Packet{
				Dst: dst.Addr(), SrcPort: uint16(20000 + i), DstPort: 9999,
				Proto: packet.ProtoTCP, Flags: packet.ACK,
				Payload: traffic.BulkChunk(rng, 256),
			})
		})
	}
	sim.Run()
	if delivered == 0 {
		return 0
	}
	return total / time.Duration(delivered)
}

// MeasureInducedLatency compares path latency with and without the
// product attached in the given tap mode. Mirrored taps should induce
// (near) zero latency; in-line taps pay the product's processing cost —
// the distinction Section 2.2 draws between in-line and mirroring
// collection.
func MeasureInducedLatency(spec products.Spec, tap TapMode, seed int64) (*LatencyResult, error) {
	if err := validateTapMode(tap); err != nil {
		return nil, err
	}
	// The probe distributions are measurement-level telemetry: always
	// collected (independent of any -telemetry flag) so the percentile
	// fields below are part of the deterministic result.
	hBase := obs.NewHistogram("eval.path_latency.baseline_ns", obs.ClockSim, nil)
	hIDS := obs.NewHistogram("eval.path_latency.with_ids_ns", obs.ClockSim, nil)

	// Baseline topology, no IDS.
	simBase := simtime.New(seed)
	topBase := netsim.BuildTopology(simBase, netsim.TopologyConfig{ClusterHosts: 2, ExternalHosts: 1})
	baseline := measurePathLatency(simBase, topBase, latencyProbeCount, hBase)

	// Same topology with the product tapped.
	tb, err := NewTestbed(spec, TestbedConfig{
		Seed: seed, ClusterHosts: 2, ExternalHosts: 1, Tap: tap,
		TrainFor: time.Millisecond, // no baseline needed for latency
	})
	if err != nil {
		return nil, err
	}
	withIDS := measurePathLatency(tb.Sim, tb.Top, latencyProbeCount, hIDS)

	res := &LatencyResult{
		Product: spec.Name, Tap: tap,
		BaselineMean: baseline, WithIDSMean: withIDS,
		Probes:       latencyProbeCount,
		BaselineHist: hBase.Snap(), WithIDSHist: hIDS.Snap(),
	}
	if withIDS > baseline {
		res.Induced = withIDS - baseline
	}
	res.BaselineP50 = res.BaselineHist.QuantileDuration(0.5)
	res.BaselineP95 = res.BaselineHist.QuantileDuration(0.95)
	res.BaselineP99 = res.BaselineHist.QuantileDuration(0.99)
	res.WithIDSP50 = res.WithIDSHist.QuantileDuration(0.5)
	res.WithIDSP95 = res.WithIDSHist.QuantileDuration(0.95)
	res.WithIDSP99 = res.WithIDSHist.QuantileDuration(0.99)
	if res.WithIDSP95 > res.BaselineP95 {
		res.InducedP95 = res.WithIDSP95 - res.BaselineP95
	}
	return res, nil
}
