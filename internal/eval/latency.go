package eval

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/packet"
	"repro/internal/products"
	"repro/internal/simtime"
	"repro/internal/traffic"
)

// LatencyResult holds the Induced Traffic Latency observation.
type LatencyResult struct {
	Product string
	Tap     TapMode
	// BaselineMean is the north-south delivery latency without any IDS.
	BaselineMean time.Duration
	// WithIDSMean is the same path with the IDS attached.
	WithIDSMean time.Duration
	// Induced is the difference (clamped at zero).
	Induced time.Duration
	// Probes is the measurement sample count.
	Probes int
}

// latencyProbeCount balances precision against run time.
const latencyProbeCount = 200

// measurePathLatency sends probe packets external->cluster through the
// given topology and returns the mean delivery latency.
func measurePathLatency(sim *simtime.Sim, top *netsim.Topology, probes int) time.Duration {
	src := top.External[0]
	dst := top.Cluster[0]
	var total time.Duration
	var delivered int
	dst.OnPacket = func(p *packet.Packet) {
		if p.DstPort == 9999 { // probe marker port
			total += sim.Now() - p.Sent
			delivered++
		}
	}
	rng := sim.Stream("latency-probes")
	for i := 0; i < probes; i++ {
		i := i
		sim.MustSchedule(time.Duration(i)*5*time.Millisecond, func() {
			src.Send(&packet.Packet{
				Dst: dst.Addr(), SrcPort: uint16(20000 + i), DstPort: 9999,
				Proto: packet.ProtoTCP, Flags: packet.ACK,
				Payload: traffic.BulkChunk(rng, 256),
			})
		})
	}
	sim.Run()
	if delivered == 0 {
		return 0
	}
	return total / time.Duration(delivered)
}

// MeasureInducedLatency compares path latency with and without the
// product attached in the given tap mode. Mirrored taps should induce
// (near) zero latency; in-line taps pay the product's processing cost —
// the distinction Section 2.2 draws between in-line and mirroring
// collection.
func MeasureInducedLatency(spec products.Spec, tap TapMode, seed int64) (*LatencyResult, error) {
	if err := validateTapMode(tap); err != nil {
		return nil, err
	}
	// Baseline topology, no IDS.
	simBase := simtime.New(seed)
	topBase := netsim.BuildTopology(simBase, netsim.TopologyConfig{ClusterHosts: 2, ExternalHosts: 1})
	baseline := measurePathLatency(simBase, topBase, latencyProbeCount)

	// Same topology with the product tapped.
	tb, err := NewTestbed(spec, TestbedConfig{
		Seed: seed, ClusterHosts: 2, ExternalHosts: 1, Tap: tap,
		TrainFor: time.Millisecond, // no baseline needed for latency
	})
	if err != nil {
		return nil, err
	}
	withIDS := measurePathLatency(tb.Sim, tb.Top, latencyProbeCount)

	res := &LatencyResult{
		Product: spec.Name, Tap: tap,
		BaselineMean: baseline, WithIDSMean: withIDS,
		Probes: latencyProbeCount,
	}
	if withIDS > baseline {
		res.Induced = withIDS - baseline
	}
	return res, nil
}
