package eval

import (
	"context"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/products"
	"repro/internal/traffic"
)

// quickAccuracy runs a reduced accuracy experiment for one product.
func quickAccuracy(t testing.TB, spec products.Spec, sensitivity float64) *AccuracyResult {
	t.Helper()
	tb, err := NewTestbed(spec, TestbedConfig{Seed: 11, TrainFor: 8 * time.Second, BackgroundPps: 250})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAccuracy(tb, sensitivity, 20*time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAccuracyRunProducesSaneRatios(t *testing.T) {
	res := quickAccuracy(t, products.TrueSecure(), 0.6)
	if res.ActualIncidents != 7 {
		t.Fatalf("actual incidents = %d, want 7 standard scenarios", res.ActualIncidents)
	}
	if res.Transactions <= res.ActualIncidents {
		t.Fatalf("transactions = %d; background sessions missing", res.Transactions)
	}
	if res.DetectedIncidents < 4 {
		t.Fatalf("TrueSecure detected only %d/7", res.DetectedIncidents)
	}
	if res.FalsePositiveRatio < 0 || res.FalsePositiveRatio > 1 ||
		res.FalseNegativeRatio < 0 || res.FalseNegativeRatio > 1 {
		t.Fatalf("ratios out of range: fp=%v fn=%v", res.FalsePositiveRatio, res.FalseNegativeRatio)
	}
	if res.MissRate+res.DetectionRate != 1 {
		t.Fatalf("miss+detection = %v", res.MissRate+res.DetectionRate)
	}
	if res.DetectedIncidents > 0 && res.MeanDetectionDelay <= 0 {
		t.Fatal("zero detection delay despite detections")
	}
	if res.MaxDetectionDelay < res.MeanDetectionDelay {
		t.Fatal("max delay below mean")
	}
}

func TestSignatureProductMissesNovelAttack(t *testing.T) {
	// The paper: a signature-based IDS "will only detect previously known
	// attacks". The DNS tunnel has no signature; the pure-signature
	// product must miss it while an anomaly product catches it.
	sig := quickAccuracy(t, products.NetRecorder(), 0.6)
	if sig.ByTechnique[attack.TechTunnel] {
		t.Fatal("pure signature product detected the DNS tunnel")
	}
	anom := quickAccuracy(t, products.StreamHunter(), 0.6)
	if !anom.ByTechnique[attack.TechTunnel] {
		t.Fatal("anomaly product missed the DNS tunnel")
	}
}

func TestSignatureProductHasLowerFalsePositives(t *testing.T) {
	sig := quickAccuracy(t, products.NetRecorder(), 0.6)
	anom := quickAccuracy(t, products.StreamHunter(), 0.6)
	if sig.FalsePositiveRatio > anom.FalsePositiveRatio {
		t.Fatalf("signature FP %.4f > anomaly FP %.4f", sig.FalsePositiveRatio, anom.FalsePositiveRatio)
	}
	if anom.MissRate > sig.MissRate {
		t.Fatalf("anomaly misses %.2f > signature %.2f", anom.MissRate, sig.MissRate)
	}
}

func TestResponseChannelsExercised(t *testing.T) {
	res := quickAccuracy(t, products.TrueSecure(), 0.6)
	if res.FirewallBlocks == 0 {
		t.Fatal("TrueSecure block-all policy produced no firewall blocks")
	}
	res2 := quickAccuracy(t, products.StreamHunter(), 0.6)
	if res2.RouterRedirects == 0 {
		t.Fatal("StreamHunter redirect policy produced no redirects")
	}
	// AgentSwarm has no console: no response events possible.
	res3 := quickAccuracy(t, products.AgentSwarm(), 0.6)
	if res3.FirewallBlocks+res3.RouterRedirects+res3.SNMPTraps != 0 {
		t.Fatal("console-less product produced response events")
	}
}

func TestCompromiseAnalysis(t *testing.T) {
	spec := products.TrueSecure()
	tb, err := NewTestbed(spec, TestbedConfig{Seed: 11, TrainFor: 8 * time.Second, BackgroundPps: 250})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAccuracy(tb, 0.6, 20*time.Second, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	comp := AnalyzeCompromise(tb, res)
	if len(comp.TrulyCompromised) == 0 {
		t.Fatal("insider+masquerade scenarios compromised no hosts")
	}
	if comp.Coverage < 0 || comp.Coverage > 1 {
		t.Fatalf("coverage = %v", comp.Coverage)
	}
	// Full-trust cluster: any compromise exposes every node.
	if len(comp.ExposedByTrust) != len(tb.Top.Cluster) {
		t.Fatalf("trust exposure %d nodes, want all %d", len(comp.ExposedByTrust), len(tb.Top.Cluster))
	}
}

func TestThroughputSearch(t *testing.T) {
	opts := ThroughputOptions{Window: 100 * time.Millisecond, LoPps: 500, HiPps: 65536, Seed: 5}
	res, err := MeasureThroughput(context.Background(), products.StreamHunter(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroLossPps <= 0 {
		t.Fatalf("zero-loss = %v", res.ZeroLossPps)
	}
	if res.Probes < 3 {
		t.Fatalf("only %d probes", res.Probes)
	}
	if !res.Indestructible && res.LethalPps < res.ZeroLossPps {
		t.Fatalf("lethal %v below zero-loss %v", res.LethalPps, res.ZeroLossPps)
	}
}

func TestThroughputOrderingAcrossProducts(t *testing.T) {
	// The 4-sensor dynamically balanced anomaly product must sustain more
	// than the 3-sensor research prototype running parallel hybrid
	// engines on tiny queues.
	opts := ThroughputOptions{Window: 100 * time.Millisecond, LoPps: 500, HiPps: 65536, Seed: 5}
	fast, err := MeasureThroughput(context.Background(), products.StreamHunter(), opts)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := MeasureThroughput(context.Background(), products.AgentSwarm(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fast.ZeroLossPps <= slow.ZeroLossPps {
		t.Fatalf("StreamHunter %.0f pps <= AgentSwarm %.0f pps", fast.ZeroLossPps, slow.ZeroLossPps)
	}
}

func TestThroughputBoundsValidation(t *testing.T) {
	if _, err := MeasureThroughput(context.Background(), products.NetRecorder(), ThroughputOptions{LoPps: 1000, HiPps: 500}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
}

func TestInducedLatencyInlineVsMirror(t *testing.T) {
	spec := products.NetRecorder()
	mirror, err := MeasureInducedLatency(spec, TapMirror, 3)
	if err != nil {
		t.Fatal(err)
	}
	inline, err := MeasureInducedLatency(spec, TapInline, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mirror.Induced > 50*time.Microsecond {
		t.Fatalf("mirrored tap induced %v", mirror.Induced)
	}
	if inline.Induced <= mirror.Induced {
		t.Fatalf("inline (%v) not slower than mirror (%v)", inline.Induced, mirror.Induced)
	}
	if _, err := MeasureInducedLatency(spec, TapMode(9), 3); err == nil {
		t.Fatal("bad tap mode accepted")
	}
}

func TestOperationalImpactDifferentiates(t *testing.T) {
	netOnly, err := MeasureOperationalImpact(products.NetRecorder(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if netOnly.HasHostComponents || netOnly.OverheadFraction != 0 {
		t.Fatalf("standalone network product charged host CPU: %+v", netOnly)
	}
	nominal, err := MeasureOperationalImpact(products.TrueSecure(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if nominal.OverheadFraction < 0.02 || nominal.OverheadFraction > 0.06 {
		t.Fatalf("nominal agent overhead %.3f outside 3-5%% band", nominal.OverheadFraction)
	}
	if nominal.DeadlineMisses != 0 {
		t.Fatalf("nominal logging caused %d deadline misses", nominal.DeadlineMisses)
	}
	c2, err := MeasureOperationalImpact(products.AgentSwarm(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if c2.OverheadFraction < 0.15 || c2.OverheadFraction > 0.25 {
		t.Fatalf("C2 agent overhead %.3f outside ~20%% band", c2.OverheadFraction)
	}
	if c2.DeadlineMisses == 0 {
		t.Fatal("C2 auditing caused no deadline misses")
	}
}

func TestSensitivitySweepProducesTradeoff(t *testing.T) {
	sw, err := SensitivitySweep(context.Background(), products.NetRecorder(), SweepOptions{
		Seed: 7, Points: 3, TrainFor: 6 * time.Second,
		RunFor: 14 * time.Second, Pps: 200, Strength: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 3 {
		t.Fatalf("%d points", len(sw.Points))
	}
	first, last := sw.Points[0], sw.Points[len(sw.Points)-1]
	if last.TypeII > first.TypeII {
		t.Fatalf("raising sensitivity increased Type II error: %.1f -> %.1f", first.TypeII, last.TypeII)
	}
	if last.TypeI < first.TypeI {
		t.Fatalf("raising sensitivity decreased Type I error: %.2f -> %.2f", first.TypeI, last.TypeI)
	}
	eff := sw.Effect()
	if eff.TypeIIRange <= 0 {
		t.Fatal("sensitivity knob had no Type II effect")
	}
}

func TestSweepValidation(t *testing.T) {
	if _, err := SensitivitySweep(context.Background(), products.NetRecorder(), SweepOptions{Points: 1}); err == nil {
		t.Fatal("single-point sweep accepted")
	}
}

func TestEqualErrorRateInterpolation(t *testing.T) {
	pts := []SweepPoint{
		{Sensitivity: 0.0, TypeI: 0, TypeII: 10},
		{Sensitivity: 0.5, TypeI: 2, TypeII: 6},
		{Sensitivity: 1.0, TypeI: 6, TypeII: 2},
	}
	s, e, ok := equalErrorRate(pts)
	if !ok {
		t.Fatal("no crossover found")
	}
	if s <= 0.5 || s >= 1.0 {
		t.Fatalf("EER sensitivity %v outside (0.5, 1.0)", s)
	}
	if e <= 2 || e >= 6 {
		t.Fatalf("EER error %v outside (2, 6)", e)
	}
	// Exact crossover: TypeII-TypeI = 4 at s=0.5 and -4 at s=1 -> s=0.75.
	if s != 0.75 || e != 4 {
		t.Fatalf("EER = (%v, %v), want (0.75, 4)", s, e)
	}
	// No crossover case.
	flat := []SweepPoint{
		{Sensitivity: 0, TypeI: 1, TypeII: 10},
		{Sensitivity: 1, TypeI: 2, TypeII: 9},
	}
	if _, _, ok := equalErrorRate(flat); ok {
		t.Fatal("crossover claimed for non-crossing curves")
	}
}

func TestScoreMappingsMonotone(t *testing.T) {
	// Each mapping must be monotone in its argument.
	if ScoreZeroLoss(200_000) < ScoreZeroLoss(1_000) {
		t.Fatal("zero-loss mapping not monotone")
	}
	if ScoreInducedLatency(time.Microsecond) < ScoreInducedLatency(time.Second) {
		t.Fatal("latency mapping not monotone")
	}
	if ScoreTimeliness(10*time.Millisecond, true) < ScoreTimeliness(time.Minute, true) {
		t.Fatal("timeliness mapping not monotone")
	}
	if ScoreTimeliness(time.Millisecond, false) != 0 {
		t.Fatal("no detections must score 0 timeliness")
	}
	if ScoreFalseNegative(0) != 4 || ScoreFalseNegative(1) != 0 {
		t.Fatal("FN mapping endpoints wrong")
	}
	if ScoreFalsePositiveRatio(0) != 4 || ScoreFalsePositiveRatio(0.5) != 0 {
		t.Fatal("FP mapping endpoints wrong")
	}
	if ScoreOperationalImpact(0) != 4 || ScoreOperationalImpact(0.3) != 0 {
		t.Fatal("impact mapping endpoints wrong")
	}
	if ScoreLethalDose(0, true) != 4 {
		t.Fatal("indestructible must score 4")
	}
}

func TestEvaluateProductFillsCompleteScorecard(t *testing.T) {
	reg := core.StandardRegistry()
	ev, err := EvaluateProduct(context.Background(), products.NetRecorder(), reg, Options{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Card.Complete() {
		t.Fatalf("scorecard incomplete, missing: %v", ev.Card.Missing())
	}
	// The weighted evaluation must work end to end.
	ws, err := ev.Card.Evaluate(core.Uniform(reg))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Total <= 0 {
		t.Fatalf("total weighted score %v", ws.Total)
	}
	if ev.Accuracy == nil || ev.Throughput == nil || ev.Latency == nil || ev.Impact == nil || ev.Sweep == nil {
		t.Fatal("raw results missing")
	}
}

func TestEvaluateAllRanksDifferently(t *testing.T) {
	if testing.Short() {
		t.Skip("full field evaluation is slow")
	}
	reg := core.StandardRegistry()
	evs, err := EvaluateAll(context.Background(), products.All(), reg, Options{Seed: 11, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("%d evaluations", len(evs))
	}
	cards := make([]*core.Scorecard, len(evs))
	for i, ev := range evs {
		if !ev.Card.Complete() {
			t.Fatalf("%s incomplete: %v", ev.Spec.Name, ev.Card.Missing())
		}
		cards[i] = ev.Card
	}
	uniform, err := core.Rank(cards, core.Uniform(reg))
	if err != nil {
		t.Fatal(err)
	}
	// Under uniform weights the totals must not be all identical — the
	// metrics are "characteristic".
	allEqual := true
	for i := 1; i < len(uniform); i++ {
		if uniform[i].Total != uniform[0].Total {
			allEqual = false
		}
	}
	if allEqual {
		t.Fatal("all products scored identically under uniform weights")
	}
}

func TestLesson1RandomPayloadsUnderTest(t *testing.T) {
	// Lesson 1: with random-payload background, a payload-inspecting IDS
	// sees unrealistically few keyword false positives.
	run := func(random bool) *AccuracyResult {
		profile := traffic.EcommerceEdge()
		if random {
			profile = profile.WithRandomPayloads()
		}
		tb, err := NewTestbed(products.NetRecorder(), TestbedConfig{
			Seed: 13, TrainFor: 5 * time.Second, BackgroundPps: 250, Profile: profile,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Maximum sensitivity so keyword rules are active.
		res, err := RunAccuracy(tb, 1.0, 15*time.Second, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	realistic := run(false)
	random := run(true)
	if realistic.FalseAlarms <= random.FalseAlarms {
		t.Fatalf("realistic payloads produced %d false alarms vs %d with random payloads; Lesson 1 not reproduced",
			realistic.FalseAlarms, random.FalseAlarms)
	}
}

func BenchmarkQuickAccuracyRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := NewTestbed(products.NetRecorder(), TestbedConfig{Seed: 11, TrainFor: 4 * time.Second, BackgroundPps: 200})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := RunAccuracy(tb, 0.6, 10*time.Second, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEvasionDifferentiatesProducts(t *testing.T) {
	// The Ptacek–Newsham fragmentation evasion: the reassembling product
	// (NetRecorder) catches the fragmented exploit; the per-packet
	// scanner (TrueSecure's signature path) misses it.
	run := func(spec products.Spec) bool {
		tb, err := NewTestbed(spec, TestbedConfig{Seed: 17, TrainFor: 6 * time.Second, BackgroundPps: 200})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Train(); err != nil {
			t.Fatal(err)
		}
		tb.IDS.SetSensitivity(0.5)
		camp := attack.NewCampaign(tb.AttackContext())
		if err := camp.LaunchAt(tb.Sim.Now()+time.Second, attack.Exploit{Count: 3, Evasive: true}); err != nil {
			t.Fatal(err)
		}
		tb.Sim.RunUntil(tb.Sim.Now() + 10*time.Second)
		tb.Drain()
		tb.IDS.Flush()
		inc := camp.Incidents()[0]
		for _, rep := range tb.IDS.Monitor().Incidents {
			if rep.Technique == "exploit" && matches(rep, inc) {
				return true
			}
		}
		return false
	}
	if !run(products.NetRecorder()) {
		t.Fatal("reassembling product missed the fragmented exploit")
	}
	if run(products.TrueSecure()) {
		t.Fatal("per-packet product detected the fragmented exploit — evasion model broken")
	}
}

func TestStealthScanEvadesThresholds(t *testing.T) {
	// A scan spread across probe intervals longer than the rule window
	// defeats the sliding-window counter (noted limitation; anomaly pair
	// novelty may still fire on some products).
	tb, err := NewTestbed(products.NetRecorder(), TestbedConfig{Seed: 17, TrainFor: 6 * time.Second, BackgroundPps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Train(); err != nil {
		t.Fatal(err)
	}
	tb.IDS.SetSensitivity(0.5)
	camp := attack.NewCampaign(tb.AttackContext())
	if err := camp.LaunchAt(tb.Sim.Now()+time.Second, attack.PortScan{Ports: 30, Stealth: true}); err != nil {
		t.Fatal(err)
	}
	tb.Sim.RunUntil(tb.Sim.Now() + 120*time.Second)
	tb.Drain()
	tb.IDS.Flush()
	for _, rep := range tb.IDS.Monitor().Incidents {
		if rep.Technique == "portscan" {
			t.Fatal("stealth scan tripped the threshold rule")
		}
	}
}

func TestHumanDimensionFloodBuriesOperator(t *testing.T) {
	// At maximum sensitivity the anomaly product floods the operator;
	// the quiet signature product's few notifications all get attention.
	noisy, err := MeasureHumanDimension(products.StreamHunter(), 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	quiet, err := MeasureHumanDimension(products.NetRecorder(), 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if noisy.Notifications <= quiet.Notifications {
		t.Fatalf("expected the anomaly product to notify more: %d vs %d",
			noisy.Notifications, quiet.Notifications)
	}
	if noisy.Report.Unseen == 0 && noisy.Report.Dismissed == 0 {
		t.Fatal("operator absorbed the flood without loss — fatigue model inert")
	}
	if quiet.Report.Unseen != 0 {
		t.Fatalf("quiet product overflowed the operator queue: %+v", quiet.Report)
	}
	// End-to-end (human) detection cannot exceed wire detection.
	for _, r := range []*HumanResult{noisy, quiet} {
		if r.HumanActedOn > r.WireDetected {
			t.Fatalf("%s: human acted on %d > wire detected %d", r.Product, r.HumanActedOn, r.WireDetected)
		}
	}
}

func TestIntentProfilesFromCampaign(t *testing.T) {
	res := quickAccuracy(t, products.TrueSecure(), 0.6)
	if len(res.Profiles) == 0 {
		t.Fatal("no attacker profiles from a full campaign")
	}
	// The campaign includes exfiltration (tunnel, insider) and escalation
	// (masquerade); the deepest profile stage must reflect that.
	deepest := res.Profiles[0].Stage
	if deepest < 3 { // at least penetration
		t.Fatalf("deepest campaign stage = %v", deepest)
	}
	for _, p := range res.Profiles {
		if p.Incidents <= 0 || p.Victims < 0 {
			t.Fatalf("malformed profile %+v", p)
		}
	}
}

func TestPlacementCentralBlindToIntraSubnet(t *testing.T) {
	res := MeasurePlacement(5)
	if !res.CentralSawExploit {
		t.Fatal("central SPAN missed the north-south exploit")
	}
	if res.CentralSawInsider {
		t.Fatal("central SPAN claims to see intra-leaf insider traffic")
	}
	if !res.LeafSawExploit || !res.LeafSawInsider {
		t.Fatalf("per-subnet placement missed attacks: %+v", res)
	}
	if res.LeafPackets <= res.CentralPackets {
		t.Fatalf("per-leaf visibility %d <= central %d", res.LeafPackets, res.CentralPackets)
	}
}

func TestVendorUpdateImprovesExtendedCampaign(t *testing.T) {
	// The harder campaign (sweep + evasion variants) separates the 5.0
	// and 5.1 releases: the update must detect strictly more.
	run := func(spec products.Spec) *AccuracyResult {
		tb, err := NewTestbed(spec, TestbedConfig{Seed: 19, TrainFor: 8 * time.Second, BackgroundPps: 250})
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Train(); err != nil {
			t.Fatal(err)
		}
		tb.IDS.SetSensitivity(0.6)
		start := tb.Sim.Now()
		camp := attack.NewCampaign(tb.AttackContext())
		if err := camp.SpreadAcross(start+2*time.Second, 24*time.Second, attack.ExtendedScenarios(0.5)); err != nil {
			t.Fatal(err)
		}
		tb.Sim.RunUntil(start + 30*time.Second)
		tb.Drain()
		tb.IDS.Flush()
		res, err := scoreAccuracy(tb, 0.6, camp)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	v50 := run(products.NetRecorder())
	v51 := run(products.NetRecorder51())
	if v51.DetectedIncidents <= v50.DetectedIncidents {
		t.Fatalf("5.1 detected %d vs 5.0's %d on the extended campaign",
			v51.DetectedIncidents, v50.DetectedIncidents)
	}
	// Specifically, the update adds the tunnel and sweep heuristics.
	if !v51.ByTechnique[attack.TechTunnel] || !v51.ByTechnique[attack.TechPingSweep] {
		t.Fatalf("5.1 coverage: tunnel=%v sweep=%v",
			v51.ByTechnique[attack.TechTunnel], v51.ByTechnique[attack.TechPingSweep])
	}
	if v50.ByTechnique[attack.TechPingSweep] {
		t.Fatal("5.0 should be ICMP-blind")
	}
}
