package traffic

import (
	"math/rand"
	"testing"
)

// Payload synthesis runs once per generated data packet, so its
// allocation behaviour sets the generator's GC load. The builders
// borrow pooled scratch and copy out one exact-size payload each,
// so steady state is a single allocation per call.

func BenchmarkHTTPRequest(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HTTPRequest(rng)
	}
}

func BenchmarkHTTPResponse(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		HTTPResponse(rng, 1200)
	}
}

func BenchmarkSyslogMessage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SyslogMessage(rng)
	}
}

func BenchmarkBulkChunk(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		BulkChunk(rng, 4096)
	}
}

func BenchmarkFrameDialogue(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := BuildDialogue(rng, AppHTTP, false)
	b.ReportAllocs()
	b.ResetTimer()
	var plan []TimedPacket
	for i := 0; i < b.N; i++ {
		plan = appendDialogue(plan[:0], rng, d, 500)
	}
	_ = plan
}
