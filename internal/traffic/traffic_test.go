package traffic

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestHTTPRequestWellFormed(t *testing.T) {
	r := rng()
	for i := 0; i < 50; i++ {
		req := string(HTTPRequest(r))
		if !strings.HasPrefix(req, "GET ") && !strings.HasPrefix(req, "POST ") {
			t.Fatalf("bad request line: %q", req)
		}
		if !strings.Contains(req, "HTTP/1.0\r\n") || !strings.Contains(req, "Host: ") {
			t.Fatalf("missing required headers: %q", req)
		}
		if !strings.Contains(req, "\r\n\r\n") {
			t.Fatalf("no header terminator: %q", req)
		}
	}
}

func TestHTTPResponseBodyLength(t *testing.T) {
	r := rng()
	resp := string(HTTPResponse(r, 2048))
	idx := strings.Index(resp, "\r\n\r\n")
	if idx < 0 {
		t.Fatal("no header/body split")
	}
	body := resp[idx+4:]
	if len(body) < 2048 {
		t.Fatalf("body %d bytes, want >= 2048", len(body))
	}
	if !strings.Contains(resp, "Content-Length: ") {
		t.Fatal("missing Content-Length")
	}
}

func TestSMTPDialogueShape(t *testing.T) {
	r := rng()
	if got := string(SMTPExchange(r, 0, true)); !strings.HasPrefix(got, "HELO ") {
		t.Fatalf("step 0 client = %q", got)
	}
	if got := string(SMTPExchange(r, 4, true)); !strings.Contains(got, "Subject: ") || !strings.HasSuffix(got, "\r\n.\r\n") {
		t.Fatalf("DATA body = %q", got)
	}
	if got := string(SMTPExchange(r, 3, false)); !strings.HasPrefix(got, "354 ") {
		t.Fatalf("DATA reply = %q", got)
	}
}

func TestDNSQueryEncoding(t *testing.T) {
	r := rng()
	q := DNSQuery(r)
	if len(q) < 17 {
		t.Fatalf("query too short: %d", len(q))
	}
	if qd := binary.BigEndian.Uint16(q[4:6]); qd != 1 {
		t.Fatalf("QDCOUNT = %d", qd)
	}
	// Walk labels to the root and confirm QTYPE/QCLASS follow.
	i := 12
	for q[i] != 0 {
		i += int(q[i]) + 1
		if i >= len(q) {
			t.Fatal("label walk ran off the end")
		}
	}
	rest := q[i+1:]
	if len(rest) != 4 || binary.BigEndian.Uint16(rest[0:2]) != 1 || binary.BigEndian.Uint16(rest[2:4]) != 1 {
		t.Fatalf("QTYPE/QCLASS = %v", rest)
	}
}

func TestDNSResponseHasAnswer(t *testing.T) {
	r := rng()
	resp := DNSResponse(r)
	if resp[2]&0x80 == 0 {
		t.Fatal("QR bit not set")
	}
	if an := binary.BigEndian.Uint16(resp[6:8]); an != 1 {
		t.Fatalf("ANCOUNT = %d", an)
	}
}

func TestClusterRPCFraming(t *testing.T) {
	r := rng()
	msg := ClusterRPC(r, RPCTrackUpdate, 7)
	if binary.BigEndian.Uint32(msg[0:4]) != ClusterRPCMagic {
		t.Fatal("bad magic")
	}
	if ClusterRPCKind(binary.BigEndian.Uint16(msg[4:6])) != RPCTrackUpdate {
		t.Fatal("bad kind")
	}
	if binary.BigEndian.Uint32(msg[6:10]) != 7 {
		t.Fatal("bad seq")
	}
	hb := ClusterRPC(r, RPCHeartbeat, 0)
	if len(hb) != 14+8 {
		t.Fatalf("heartbeat len = %d", len(hb))
	}
}

func TestNTPPacket(t *testing.T) {
	r := rng()
	c := NTPPacket(r, true)
	s := NTPPacket(r, false)
	if len(c) != 48 || len(s) != 48 {
		t.Fatal("NTP packets must be 48 bytes")
	}
	if c[0]&0x07 != 3 || s[0]&0x07 != 4 {
		t.Fatalf("modes: client=%d server=%d", c[0]&7, s[0]&7)
	}
}

func TestRandomPayloadLength(t *testing.T) {
	r := rng()
	if got := len(RandomPayload(r, 333)); got != 333 {
		t.Fatalf("len = %d", got)
	}
}

func TestBuildDialogueDeterministic(t *testing.T) {
	a := BuildDialogue(rand.New(rand.NewSource(5)), AppHTTP, false)
	b := BuildDialogue(rand.New(rand.NewSource(5)), AppHTTP, false)
	if len(a.Steps) != len(b.Steps) {
		t.Fatal("nondeterministic step count")
	}
	for i := range a.Steps {
		if !bytes.Equal(a.Steps[i].Payload, b.Steps[i].Payload) {
			t.Fatalf("step %d payloads differ", i)
		}
	}
}

func TestBuildDialogueAllKinds(t *testing.T) {
	r := rng()
	for k := AppKind(0); k < numAppKinds; k++ {
		d := BuildDialogue(r, k, false)
		if d.Kind != k {
			t.Fatalf("kind %v: dialogue kind %v", k, d.Kind)
		}
		if len(d.Steps) == 0 {
			t.Fatalf("kind %v: empty dialogue", k)
		}
		if d.PacketCount() <= 0 || d.PayloadBytes() <= 0 {
			t.Fatalf("kind %v: count=%d bytes=%d", k, d.PacketCount(), d.PayloadBytes())
		}
	}
}

func TestRandomPayloadsPreserveLengths(t *testing.T) {
	plain := BuildDialogue(rand.New(rand.NewSource(9)), AppSMTP, false)
	noisy := BuildDialogue(rand.New(rand.NewSource(9)), AppSMTP, true)
	if len(plain.Steps) != len(noisy.Steps) {
		t.Fatal("step counts differ")
	}
	for i := range plain.Steps {
		if len(plain.Steps[i].Payload) != len(noisy.Steps[i].Payload) {
			t.Fatalf("step %d length changed under random payloads", i)
		}
	}
}

func TestFrameDialogueTCPFraming(t *testing.T) {
	r := rng()
	d := BuildDialogue(r, AppHTTP, false)
	plan := FrameDialogue(r, d, time.Millisecond)
	if len(plan) < 5 {
		t.Fatalf("plan too short: %d", len(plan))
	}
	if !plan[0].Packet.Flags.Has(packet.SYN) || !plan[0].FromClient {
		t.Fatal("first packet must be client SYN")
	}
	if !plan[1].Packet.Flags.Has(packet.SYN | packet.ACK) {
		t.Fatal("second packet must be SYN|ACK")
	}
	last := plan[len(plan)-1]
	if last.FromClient || !last.Packet.Flags.Has(packet.ACK) {
		t.Fatal("teardown must end with server ACK")
	}
	if !plan[len(plan)-2].Packet.Flags.Has(packet.FIN) {
		t.Fatal("client FIN missing")
	}
	// Offsets must be nondecreasing.
	for i := 1; i < len(plan); i++ {
		if plan[i].Offset < plan[i-1].Offset {
			t.Fatal("offsets not monotonic")
		}
	}
}

func TestFrameDialogueSegmentsLargePayloads(t *testing.T) {
	r := rng()
	d := Dialogue{Kind: AppBulk, Proto: packet.ProtoTCP,
		Steps: []Step{{FromClient: false, Payload: make([]byte, 3*MSS+100)}}}
	plan := FrameDialogue(r, d, time.Millisecond)
	segs := 0
	for _, tp := range plan {
		if len(tp.Packet.Payload) > 0 {
			segs++
			if len(tp.Packet.Payload) > MSS {
				t.Fatalf("segment exceeds MSS: %d", len(tp.Packet.Payload))
			}
		}
	}
	if segs != 4 {
		t.Fatalf("segments = %d, want 4", segs)
	}
	// Only the final segment of the burst carries PSH.
	pshSeen := 0
	for _, tp := range plan {
		if tp.Packet.Flags.Has(packet.PSH) {
			pshSeen++
		}
	}
	if pshSeen != 1 {
		t.Fatalf("PSH on %d segments, want 1", pshSeen)
	}
}

func TestFrameDialoguePacketCountMatchesEstimate(t *testing.T) {
	r := rng()
	for k := AppKind(0); k < numAppKinds; k++ {
		d := BuildDialogue(r, k, false)
		plan := FrameDialogue(r, d, time.Millisecond)
		if len(plan) != d.PacketCount() {
			t.Fatalf("kind %v: framed %d packets, PacketCount()=%d", k, len(plan), d.PacketCount())
		}
	}
}

func TestProfilePickRespectsWeights(t *testing.T) {
	p := EcommerceEdge()
	r := rng()
	counts := make(map[AppKind]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[p.Pick(r).Kind]++
	}
	// HTTP dominates the e-commerce mix (62/100 weight).
	frac := float64(counts[AppHTTP]) / n
	if frac < 0.55 || frac > 0.70 {
		t.Fatalf("HTTP fraction %.3f, want ~0.62", frac)
	}
	if counts[AppClusterRPC] != 0 {
		t.Fatal("cluster RPC drawn from e-commerce profile")
	}
}

func TestClusterProfileIsEastWestDominated(t *testing.T) {
	p := RealTimeCluster()
	r := rng()
	ew := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if p.Pick(r).Locality == EastWest {
			ew++
		}
	}
	if frac := float64(ew) / n; frac < 0.80 {
		t.Fatalf("east-west fraction %.3f, want >= 0.80", frac)
	}
}

func TestAvgPacketsPerSessionPositive(t *testing.T) {
	for _, p := range []Profile{EcommerceEdge(), RealTimeCluster()} {
		avg := p.AvgPacketsPerSession(rng(), 100)
		if avg < 2 {
			t.Fatalf("profile %s: avg %.1f packets/session", p.Name, avg)
		}
	}
}

func testEndpoints() Endpoints {
	return Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
		Cluster:  []packet.Addr{packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3)},
	}
}

func TestGeneratorEmitsFramedSessions(t *testing.T) {
	sim := simtime.New(3)
	var got []*packet.Packet
	g, err := NewGenerator(sim, EcommerceEdge(), testEndpoints(), nil, func(p *packet.Packet) {
		got = append(got, p)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(50); err != nil {
		t.Fatal(err)
	}
	sim.RunUntil(2 * time.Second)
	g.Stop()
	sim.Run()

	if g.SessionsStarted == 0 {
		t.Fatal("no sessions started")
	}
	if uint64(len(got)) != g.PacketsEmitted {
		t.Fatalf("emitted %d, counted %d", len(got), g.PacketsEmitted)
	}
	seen := make(map[uint64]bool)
	for _, p := range got {
		if p.Seq == 0 {
			t.Fatal("unassigned Seq")
		}
		if seen[p.Seq] {
			t.Fatalf("duplicate Seq %d", p.Seq)
		}
		seen[p.Seq] = true
		if p.Truth.Malicious {
			t.Fatal("background traffic labeled malicious")
		}
		if p.Src == 0 || p.Dst == 0 {
			t.Fatal("unaddressed packet")
		}
	}
}

func TestGeneratorDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, uint64) {
		sim := simtime.New(77)
		g, err := NewGenerator(sim, RealTimeCluster(), testEndpoints(), nil, func(p *packet.Packet) {})
		if err != nil {
			t.Fatal(err)
		}
		g.Start(100)
		sim.RunUntil(time.Second)
		return g.SessionsStarted, g.PacketsEmitted
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", s1, p1, s2, p2)
	}
}

func TestGeneratorValidation(t *testing.T) {
	sim := simtime.New(1)
	if _, err := NewGenerator(sim, EcommerceEdge(), Endpoints{}, nil, func(p *packet.Packet) {}); err == nil {
		t.Fatal("empty endpoints accepted")
	}
	if _, err := NewGenerator(sim, EcommerceEdge(), testEndpoints(), nil, nil); err == nil {
		t.Fatal("nil emit accepted")
	}
	g, _ := NewGenerator(sim, EcommerceEdge(), testEndpoints(), nil, func(p *packet.Packet) {})
	if err := g.Start(0); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := g.Start(10); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(10); err == nil {
		t.Fatal("double Start accepted")
	}
}

func TestSessionRateForPps(t *testing.T) {
	sim := simtime.New(1)
	g, _ := NewGenerator(sim, EcommerceEdge(), testEndpoints(), nil, func(p *packet.Packet) {})
	rate := g.SessionRateForPps(1000)
	if rate <= 0 || rate >= 1000 {
		t.Fatalf("rate = %v; sessions carry multiple packets so rate must be in (0, pps)", rate)
	}
}

func TestGeneratorApproximatesTargetPps(t *testing.T) {
	sim := simtime.New(11)
	var n uint64
	g, _ := NewGenerator(sim, EcommerceEdge(), testEndpoints(), nil, func(p *packet.Packet) { n++ })
	const target = 2000.0
	g.Start(g.SessionRateForPps(target))
	const dur = 5 * time.Second
	sim.RunUntil(dur)
	got := float64(n) / dur.Seconds()
	if got < target*0.5 || got > target*1.6 {
		t.Fatalf("achieved %.0f pps, want within ~[0.5, 1.6]x of %.0f", got, target)
	}
}

// Property: framing any dialogue conserves payload bytes.
func TestPropertyFramingConservesBytes(t *testing.T) {
	f := func(seed int64, kindRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		kind := AppKind(int(kindRaw) % int(numAppKinds))
		d := BuildDialogue(r, kind, false)
		plan := FrameDialogue(r, d, time.Millisecond)
		total := 0
		for _, tp := range plan {
			total += len(tp.Packet.Payload)
		}
		return total == d.PayloadBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildDialogueHTTP(b *testing.B) {
	r := rng()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildDialogue(r, AppHTTP, false)
	}
}

func BenchmarkGeneratorSecondOfTraffic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := simtime.New(5)
		g, _ := NewGenerator(sim, EcommerceEdge(), testEndpoints(), nil, func(p *packet.Packet) {})
		g.Start(200)
		sim.RunUntil(time.Second)
	}
}

func TestFTPExchangeShape(t *testing.T) {
	r := rng()
	if got := string(FTPExchange(r, 0, true)); !strings.HasPrefix(got, "USER ") {
		t.Fatalf("step 0 = %q", got)
	}
	if got := string(FTPExchange(r, 3, false)); !strings.Contains(got, "226 Transfer complete") {
		t.Fatalf("RETR reply = %q", got)
	}
	if got := string(FTPExchange(r, 9, true)); got != "QUIT\r\n" {
		t.Fatalf("final = %q", got)
	}
}

func TestPOP3ExchangeShape(t *testing.T) {
	r := rng()
	if got := string(POP3Exchange(r, 3, false)); !strings.Contains(got, "+OK message follows") || !strings.HasSuffix(got, "\r\n.\r\n") {
		t.Fatalf("RETR reply = %q", got)
	}
	if got := string(POP3Exchange(r, 2, true)); got != "STAT\r\n" {
		t.Fatalf("STAT = %q", got)
	}
}

func TestSyslogMessageShape(t *testing.T) {
	r := rng()
	for i := 0; i < 20; i++ {
		msg := string(SyslogMessage(r))
		if !strings.HasPrefix(msg, "<") || !strings.Contains(msg, ">") || !strings.Contains(msg, "]: ") {
			t.Fatalf("syslog line malformed: %q", msg)
		}
	}
}

func TestEnterpriseCampusProfile(t *testing.T) {
	p := EnterpriseCampus()
	r := rng()
	kinds := map[AppKind]int{}
	for i := 0; i < 5000; i++ {
		kinds[p.Pick(r).Kind]++
	}
	for _, k := range []AppKind{AppFTP, AppPOP3, AppSyslog} {
		if kinds[k] == 0 {
			t.Fatalf("campus profile never drew %v", k)
		}
	}
	if kinds[AppClusterRPC] != 0 {
		t.Fatal("cluster RPC drawn from campus profile")
	}
	// Dialogues for the new kinds frame correctly.
	for _, k := range []AppKind{AppFTP, AppPOP3, AppSyslog} {
		d := BuildDialogue(r, k, false)
		plan := FrameDialogue(r, d, time.Millisecond)
		if len(plan) != d.PacketCount() {
			t.Fatalf("%v: framed %d packets, PacketCount %d", k, len(plan), d.PacketCount())
		}
	}
	// Syslog is UDP one-way.
	d := BuildDialogue(r, AppSyslog, false)
	if d.Proto != packet.ProtoUDP {
		t.Fatal("syslog dialogue not UDP")
	}
	for _, st := range d.Steps {
		if !st.FromClient {
			t.Fatal("syslog produced a server->client step")
		}
	}
}

func TestCampusGeneratorRuns(t *testing.T) {
	sim := simtime.New(6)
	var n int
	g, err := NewGenerator(sim, EnterpriseCampus(), testEndpoints(), nil, func(p *packet.Packet) { n++ })
	if err != nil {
		t.Fatal(err)
	}
	g.Start(50)
	sim.RunUntil(3 * time.Second)
	g.Stop()
	sim.Run()
	if n < 100 {
		t.Fatalf("campus generator emitted only %d packets", n)
	}
}
