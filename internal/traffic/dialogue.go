package traffic

import (
	"math/rand"
	"time"

	"repro/internal/packet"
)

// MSS is the maximum application bytes carried per data segment.
const MSS = 1460

// Step is one application message within a session, sent Gap after the
// previous step completed.
type Step struct {
	FromClient bool
	Payload    []byte
	Gap        time.Duration
}

// Dialogue is a complete application-level session script. The generator
// wraps it in transport framing (TCP handshake/teardown or bare UDP).
type Dialogue struct {
	Kind  AppKind
	Proto packet.Proto
	Steps []Step
}

// PacketCount returns the number of packets the dialogue will emit once
// framed: data segments plus TCP handshake and teardown overhead.
func (d Dialogue) PacketCount() int {
	n := 0
	for _, s := range d.Steps {
		seg := (len(s.Payload) + MSS - 1) / MSS
		if seg == 0 {
			seg = 1
		}
		n += seg
	}
	if d.Proto == packet.ProtoTCP {
		n += 5 // SYN, SYN|ACK, ACK, FIN|ACK, ACK
	}
	return n
}

// PayloadBytes returns total application bytes across all steps.
func (d Dialogue) PayloadBytes() int {
	n := 0
	for _, s := range d.Steps {
		n += len(s.Payload)
	}
	return n
}

// thinkTime returns a human/application pause in a plausible range.
func thinkTime(rng *rand.Rand, base time.Duration) time.Duration {
	return base + time.Duration(rng.Int63n(int64(base)))
}

// BuildDialogue synthesizes a session script for the kind. When
// randomPayloads is true every payload is replaced by uniform random bytes
// of the same length — the Lesson-1 ablation knob.
func BuildDialogue(rng *rand.Rand, kind AppKind, randomPayloads bool) Dialogue {
	var d Dialogue
	d.Kind = kind
	d.Proto = packet.ProtoTCP
	switch kind {
	case AppHTTP:
		// 1-4 request/response pairs on one connection.
		pairs := 1 + rng.Intn(4)
		for i := 0; i < pairs; i++ {
			d.Steps = append(d.Steps,
				Step{FromClient: true, Payload: HTTPRequest(rng), Gap: thinkTime(rng, 30*time.Millisecond)},
				Step{FromClient: false, Payload: HTTPResponse(rng, 256+rng.Intn(6<<10)), Gap: thinkTime(rng, 5*time.Millisecond)},
			)
		}
	case AppSMTP:
		d.Steps = append(d.Steps, Step{FromClient: false, Payload: SMTPExchange(rng, 0, false), Gap: thinkTime(rng, 5*time.Millisecond)})
		for step := 0; step <= 5; step++ {
			d.Steps = append(d.Steps,
				Step{FromClient: true, Payload: SMTPExchange(rng, step, true), Gap: thinkTime(rng, 10*time.Millisecond)},
				Step{FromClient: false, Payload: SMTPExchange(rng, step, false), Gap: thinkTime(rng, 5*time.Millisecond)},
			)
		}
	case AppDNS:
		d.Proto = packet.ProtoUDP
		d.Steps = append(d.Steps,
			Step{FromClient: true, Payload: DNSQuery(rng)},
			Step{FromClient: false, Payload: DNSResponse(rng), Gap: thinkTime(rng, 2*time.Millisecond)},
		)
	case AppInteractive:
		exchanges := 3 + rng.Intn(12)
		for i := 0; i < exchanges; i++ {
			d.Steps = append(d.Steps,
				Step{FromClient: true, Payload: InteractiveKeystrokes(rng, true), Gap: thinkTime(rng, 800*time.Millisecond)},
				Step{FromClient: false, Payload: InteractiveKeystrokes(rng, false), Gap: thinkTime(rng, 20*time.Millisecond)},
			)
		}
	case AppClusterRPC:
		d.Proto = packet.ProtoUDP
		msgs := 4 + rng.Intn(16)
		for i := 0; i < msgs; i++ {
			kinds := []ClusterRPCKind{RPCStateVector, RPCTrackUpdate, RPCHeartbeat, RPCCheckpoint}
			k := kinds[rng.Intn(len(kinds))]
			d.Steps = append(d.Steps, Step{
				FromClient: true,
				Payload:    ClusterRPC(rng, k, uint32(i)),
				Gap:        time.Duration(1+rng.Intn(10)) * time.Millisecond, // tight real-time cadence
			})
			if k == RPCHeartbeat { // heartbeats are acknowledged
				d.Steps = append(d.Steps, Step{
					FromClient: false,
					Payload:    ClusterRPC(rng, RPCHeartbeat, uint32(i)),
					Gap:        time.Millisecond,
				})
			}
		}
	case AppBulk:
		chunks := 8 + rng.Intn(56)
		for i := 0; i < chunks; i++ {
			d.Steps = append(d.Steps, Step{
				FromClient: i%16 == 0, // occasional client-side window/ack data
				Payload:    BulkChunk(rng, 1024+rng.Intn(3*1024)),
				Gap:        time.Duration(200+rng.Intn(800)) * time.Microsecond,
			})
		}
	case AppNTP:
		d.Proto = packet.ProtoUDP
		d.Steps = append(d.Steps,
			Step{FromClient: true, Payload: NTPPacket(rng, true)},
			Step{FromClient: false, Payload: NTPPacket(rng, false), Gap: thinkTime(rng, 5*time.Millisecond)},
		)
	case AppFTP:
		for step := 0; step <= 4; step++ {
			d.Steps = append(d.Steps,
				Step{FromClient: true, Payload: FTPExchange(rng, step, true), Gap: thinkTime(rng, 100*time.Millisecond)},
				Step{FromClient: false, Payload: FTPExchange(rng, step, false), Gap: thinkTime(rng, 10*time.Millisecond)},
			)
		}
	case AppPOP3:
		d.Steps = append(d.Steps, Step{FromClient: false, Payload: []byte("+OK POP3 ready\r\n"), Gap: thinkTime(rng, 5*time.Millisecond)})
		for step := 0; step <= 4; step++ {
			d.Steps = append(d.Steps,
				Step{FromClient: true, Payload: POP3Exchange(rng, step, true), Gap: thinkTime(rng, 50*time.Millisecond)},
				Step{FromClient: false, Payload: POP3Exchange(rng, step, false), Gap: thinkTime(rng, 10*time.Millisecond)},
			)
		}
	case AppSyslog:
		d.Proto = packet.ProtoUDP
		msgs := 3 + rng.Intn(10)
		for i := 0; i < msgs; i++ {
			d.Steps = append(d.Steps, Step{
				FromClient: true,
				Payload:    SyslogMessage(rng),
				Gap:        time.Duration(50+rng.Intn(400)) * time.Millisecond,
			})
		}
	default:
		d.Steps = append(d.Steps, Step{FromClient: true, Payload: []byte("noop")})
	}
	if randomPayloads {
		for i := range d.Steps {
			d.Steps[i].Payload = RandomPayload(rng, len(d.Steps[i].Payload))
		}
	}
	return d
}
