// Package traffic generates the background workloads the evaluation
// testbed replays against an IDS under test. The paper's first lesson
// learned (Section 4) is that "simple flooding of the network ... with
// meaningless data is not sufficient": payload-inspecting IDSs behave
// differently when the data portion of packets has realistic content.
// This package therefore synthesizes protocol-plausible application
// payloads (HTTP, SMTP, DNS, interactive shell, cluster RPC, bulk
// transfer) and composes them into site profiles — an e-commerce edge
// versus a high-trust distributed real-time cluster — with deterministic,
// seedable randomness.
package traffic

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
)

// AppKind identifies an application protocol the generators can speak.
type AppKind int

// Supported application kinds.
const (
	AppHTTP AppKind = iota
	AppSMTP
	AppDNS
	AppInteractive // telnet/ssh-style keystroke sessions
	AppClusterRPC  // binary-framed inter-node real-time messaging
	AppBulk        // file transfer / replication
	AppNTP
	AppFTP    // FTP control dialogue
	AppPOP3   // mailbox retrieval
	AppSyslog // one-way UDP event stream
	numAppKinds
)

// String names the kind.
func (k AppKind) String() string {
	switch k {
	case AppHTTP:
		return "http"
	case AppSMTP:
		return "smtp"
	case AppDNS:
		return "dns"
	case AppInteractive:
		return "interactive"
	case AppClusterRPC:
		return "cluster-rpc"
	case AppBulk:
		return "bulk"
	case AppNTP:
		return "ntp"
	case AppFTP:
		return "ftp"
	case AppPOP3:
		return "pop3"
	case AppSyslog:
		return "syslog"
	default:
		return fmt.Sprintf("app(%d)", int(k))
	}
}

// WellKnownPort returns the canonical server port for the kind.
func (k AppKind) WellKnownPort() uint16 {
	switch k {
	case AppHTTP:
		return 80
	case AppSMTP:
		return 25
	case AppDNS:
		return 53
	case AppInteractive:
		return 22
	case AppClusterRPC:
		return 7400
	case AppBulk:
		return 20
	case AppNTP:
		return 123
	case AppFTP:
		return 21
	case AppPOP3:
		return 110
	case AppSyslog:
		return 514
	default:
		return 9999
	}
}

// Vocabulary used to make payloads look like real site traffic rather
// than noise. Word choice is arbitrary; structural plausibility is what
// the detection engines respond to.
var (
	httpPaths = []string{
		"/", "/index.html", "/catalog", "/catalog/items", "/cart",
		"/checkout", "/api/v1/orders", "/api/v1/inventory", "/login",
		"/static/site.css", "/static/app.js", "/images/logo.png",
		"/search", "/account/profile", "/api/v1/telemetry",
	}
	httpHosts = []string{
		"shop.example.com", "www.example.com", "api.example.com",
	}
	httpAgents = []string{
		"Mozilla/4.0 (compatible; MSIE 5.5; Windows NT 5.0)",
		"Mozilla/4.76 [en] (X11; U; Linux 2.4.2 i686)",
		"Lynx/2.8.4rel.1 libwww-FM/2.14",
	}
	mailUsers = []string{
		"ops", "logistics", "watchofficer", "maintenance", "admin",
		"scheduler", "firecontrol", "navigation",
	}
	mailDomains = []string{"example.com", "fleet.example.mil", "lab.example.org"}
	dnsNames    = []string{
		"node01.cluster.local", "node02.cluster.local", "tds.cluster.local",
		"shop.example.com", "ntp.example.com", "mail.example.com",
		"console.cluster.local", "sensor-array.cluster.local",
	}
	shellCommands = []string{
		"ls -l /var/log", "ps -ef", "netstat -an", "df -k",
		"tail -f /var/log/messages", "uptime", "who", "cat motd",
		"vmstat 5", "iostat", "top -b -n 1",
	}
	loremWords = strings.Fields(`status report nominal track update bearing range
		doppler contact classification friendly unknown hostile engage hold
		weapons safe assign sector scan radar sonar telemetry heartbeat sync
		checkpoint commit rollback replica queue depth deadline slack margin`)
)

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// payloadScratch pools the intermediate buffers payload synthesis
// assembles into. The builders run once per generated packet-with-data,
// so at high pps the strings.Builder/Sprintf intermediates they used to
// create were a major GC load; now each builder borrows a scratch
// buffer, appends in place, and copies out one exact-size payload.
var payloadScratch = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

func getScratch() *[]byte { return payloadScratch.Get().(*[]byte) }

// finishPayload copies the assembled scratch into an exact-size payload
// and recycles the scratch.
func finishPayload(sp *[]byte, b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	*sp = b[:0]
	payloadScratch.Put(sp)
	return out
}

// appendWords appends n space-separated vocabulary words, drawing from
// rng exactly as words() does.
func appendWords(b []byte, rng *rand.Rand, n int) []byte {
	for i := 0; i < n; i++ {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, pick(rng, loremWords)...)
	}
	return b
}

// appendPadLeft appends v right-justified in a width-w field, padded
// with the given byte (fmt's %6d / %02d / %08x shapes).
func appendPadLeft(b []byte, v uint64, base, w int, pad byte) []byte {
	var tmp [20]byte
	s := strconv.AppendUint(tmp[:0], v, base)
	for i := len(s); i < w; i++ {
		b = append(b, pad)
	}
	return append(b, s...)
}

func words(rng *rand.Rand, n int) string {
	sp := getScratch()
	b := appendWords((*sp)[:0], rng, n)
	s := string(b)
	*sp = b[:0]
	payloadScratch.Put(sp)
	return s
}

// HTTPRequest builds a plausible HTTP/1.0 GET or POST request.
func HTTPRequest(rng *rand.Rand) []byte {
	path := pick(rng, httpPaths)
	host := pick(rng, httpHosts)
	agent := pick(rng, httpAgents)
	sp := getScratch()
	b := (*sp)[:0]
	if rng.Intn(5) == 0 { // occasional POST
		bsp := getScratch()
		body := append((*bsp)[:0], "item="...)
		body = strconv.AppendInt(body, int64(rng.Intn(10000)), 10)
		body = append(body, "&qty="...)
		body = strconv.AppendInt(body, int64(1+rng.Intn(9)), 10)
		body = append(body, "&note="...)
		body = appendWords(body, rng, 3)
		b = append(b, "POST "...)
		b = append(b, path...)
		b = append(b, " HTTP/1.0\r\nHost: "...)
		b = append(b, host...)
		b = append(b, "\r\nUser-Agent: "...)
		b = append(b, agent...)
		b = append(b, "\r\nContent-Type: application/x-www-form-urlencoded\r\nContent-Length: "...)
		b = strconv.AppendInt(b, int64(len(body)), 10)
		b = append(b, "\r\n\r\n"...)
		b = append(b, body...)
		*bsp = body[:0]
		payloadScratch.Put(bsp)
		return finishPayload(sp, b)
	}
	b = append(b, "GET "...)
	b = append(b, path...)
	b = append(b, " HTTP/1.0\r\nHost: "...)
	b = append(b, host...)
	b = append(b, "\r\nUser-Agent: "...)
	b = append(b, agent...)
	b = append(b, "\r\nAccept: */*\r\n\r\n"...)
	return finishPayload(sp, b)
}

// HTTPResponse builds a plausible HTTP/1.0 response with an HTML-ish body
// of roughly bodyLen bytes.
func HTTPResponse(rng *rand.Rand, bodyLen int) []byte {
	if bodyLen < 16 {
		bodyLen = 16
	}
	bsp := getScratch()
	body := append((*bsp)[:0], "<html><head><title>"...)
	body = appendWords(body, rng, 2)
	body = append(body, "</title></head><body>"...)
	for len(body) < bodyLen {
		body = append(body, "<p>"...)
		body = appendWords(body, rng, 8)
		body = append(body, "</p>"...)
	}
	body = append(body, "</body></html>"...)
	status := "200 OK"
	if rng.Intn(20) == 0 {
		status = "404 Not Found"
	}
	sp := getScratch()
	b := append((*sp)[:0], "HTTP/1.0 "...)
	b = append(b, status...)
	b = append(b, "\r\nServer: Apache/1.3.19 (Unix)\r\nContent-Type: text/html\r\nContent-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\n\r\n"...)
	b = append(b, body...)
	*bsp = body[:0]
	payloadScratch.Put(bsp)
	return finishPayload(sp, b)
}

// SMTPExchange builds one side of an SMTP dialogue: either a client
// command sequence segment or a server reply, stepwise by index.
func SMTPExchange(rng *rand.Rand, step int, fromClient bool) []byte {
	from := pick(rng, mailUsers) + "@" + pick(rng, mailDomains)
	to := pick(rng, mailUsers) + "@" + pick(rng, mailDomains)
	if fromClient {
		switch step {
		case 0:
			return []byte("HELO " + pick(rng, mailDomains) + "\r\n")
		case 1:
			return []byte("MAIL FROM:<" + from + ">\r\n")
		case 2:
			return []byte("RCPT TO:<" + to + ">\r\n")
		case 3:
			return []byte("DATA\r\n")
		case 4:
			return []byte(fmt.Sprintf(
				"From: %s\r\nTo: %s\r\nSubject: %s\r\n\r\n%s\r\n.\r\n",
				from, to, words(rng, 4), words(rng, 30+rng.Intn(60))))
		default:
			return []byte("QUIT\r\n")
		}
	}
	switch step {
	case 0:
		return []byte("220 mail.example.com ESMTP ready\r\n")
	case 3:
		return []byte("354 End data with <CR><LF>.<CR><LF>\r\n")
	case 5:
		return []byte("221 Bye\r\n")
	default:
		return []byte("250 OK\r\n")
	}
}

// DNSQuery encodes a plausible DNS question section for a known name.
func DNSQuery(rng *rand.Rand) []byte {
	name := pick(rng, dnsNames)
	buf := make([]byte, 12, 12+len(name)+6)
	binary.BigEndian.PutUint16(buf[0:2], uint16(rng.Intn(1<<16))) // ID
	binary.BigEndian.PutUint16(buf[2:4], 0x0100)                  // RD
	binary.BigEndian.PutUint16(buf[4:6], 1)                       // QDCOUNT
	for _, label := range strings.Split(name, ".") {
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	buf = append(buf, 0)          // root
	buf = append(buf, 0, 1, 0, 1) // QTYPE=A QCLASS=IN
	return buf
}

// DNSResponse encodes a matching-looking answer with one A record.
func DNSResponse(rng *rand.Rand) []byte {
	q := DNSQuery(rng)
	q[2] |= 0x80 // QR
	binary.BigEndian.PutUint16(q[6:8], 1)
	// Compressed-pointer answer: name ptr, type A, class IN, TTL, rdlen, addr.
	ans := []byte{0xc0, 0x0c, 0, 1, 0, 1, 0, 0, 1, 0x2c, 0, 4,
		10, byte(rng.Intn(4) + 1), byte(rng.Intn(250)), byte(rng.Intn(250) + 1)}
	return append(q, ans...)
}

// InteractiveKeystrokes builds a fragment of a shell session: a short
// command or its output.
func InteractiveKeystrokes(rng *rand.Rand, fromClient bool) []byte {
	if fromClient {
		cmd := pick(rng, shellCommands)
		out := make([]byte, 0, len(cmd)+1)
		out = append(out, cmd...)
		return append(out, '\n')
	}
	lines := 1 + rng.Intn(8)
	sp := getScratch()
	b := (*sp)[:0]
	for i := 0; i < lines; i++ {
		w := pick(rng, loremWords)
		b = append(b, w...)
		for j := len(w); j < 24; j++ { // fmt's %-24s left-justified pad
			b = append(b, ' ')
		}
		b = append(b, ' ')
		b = appendPadLeft(b, uint64(rng.Intn(99999)), 10, 6, ' ')
		b = append(b, ' ')
		b = appendWords(b, rng, 4)
		b = append(b, '\n')
	}
	return finishPayload(sp, b)
}

// ClusterRPCMagic opens every inter-node real-time message the cluster
// profile emits; anomaly engines learn it as "normal" LAN content.
const ClusterRPCMagic = 0x52545243 // "RTRC"

// ClusterRPCKind distinguishes inter-node message types.
type ClusterRPCKind uint16

// Cluster message kinds: periodic state, track updates, heartbeats,
// checkpoint replication.
const (
	RPCStateVector ClusterRPCKind = iota + 1
	RPCTrackUpdate
	RPCHeartbeat
	RPCCheckpoint
)

// ClusterRPC builds a binary-framed real-time inter-node message:
// magic(4) kind(2) seq(4) deadlineUs(4) payload. The framing is fixed so
// anomaly detectors can profile it and signature engines can ignore it.
func ClusterRPC(rng *rand.Rand, kind ClusterRPCKind, seq uint32) []byte {
	var payloadLen int
	switch kind {
	case RPCStateVector:
		payloadLen = 64 + rng.Intn(64)
	case RPCTrackUpdate:
		payloadLen = 32 + rng.Intn(32)
	case RPCHeartbeat:
		payloadLen = 8
	case RPCCheckpoint:
		payloadLen = 512 + rng.Intn(1024)
	default:
		payloadLen = 16
	}
	buf := make([]byte, 14+payloadLen)
	binary.BigEndian.PutUint32(buf[0:4], ClusterRPCMagic)
	binary.BigEndian.PutUint16(buf[4:6], uint16(kind))
	binary.BigEndian.PutUint32(buf[6:10], seq)
	binary.BigEndian.PutUint32(buf[10:14], uint32(1000+rng.Intn(9000))) // deadline µs
	// Payload: structured little-endian floats-ish words, not noise.
	for i := 14; i+4 <= len(buf); i += 4 {
		binary.BigEndian.PutUint32(buf[i:i+4], rng.Uint32()&0x3FFFFFFF)
	}
	return buf
}

// BulkChunk builds a segment of a file-transfer stream: compressible,
// structured content rather than uniform random bytes.
func BulkChunk(rng *rand.Rand, n int) []byte {
	if n <= 0 {
		n = 1024
	}
	sp := getScratch()
	b := (*sp)[:0]
	for len(b) < n {
		b = appendPadLeft(b, uint64(rng.Uint32()), 16, 8, '0')
		b = append(b, ' ')
		b = appendWords(b, rng, 6)
		b = append(b, '\n')
	}
	return finishPayload(sp, b[:n])
}

// NTPPacket builds a 48-byte NTP client or server packet.
func NTPPacket(rng *rand.Rand, fromClient bool) []byte {
	b := make([]byte, 48)
	if fromClient {
		b[0] = 0x1B // LI=0 VN=3 Mode=3 (client)
	} else {
		b[0] = 0x1C // Mode=4 (server)
		b[1] = 2    // stratum
	}
	binary.BigEndian.PutUint64(b[40:48], uint64(rng.Int63())) // transmit ts
	return b
}

// FTPExchange builds one side of an FTP control dialogue, stepwise.
func FTPExchange(rng *rand.Rand, step int, fromClient bool) []byte {
	files := []string{"telemetry.log", "manifest.dat", "patch-2002-04.tar", "README", "config.bak"}
	if fromClient {
		switch step {
		case 0:
			return []byte("USER " + pick(rng, mailUsers) + "\r\n")
		case 1:
			return []byte("PASS ********\r\n")
		case 2:
			return []byte(fmt.Sprintf("PORT 10,1,1,%d,%d,%d\r\n", rng.Intn(250)+1, rng.Intn(250), rng.Intn(250)))
		case 3:
			return []byte("RETR " + pick(rng, files) + "\r\n")
		default:
			return []byte("QUIT\r\n")
		}
	}
	switch step {
	case 0:
		return []byte("331 Password required\r\n")
	case 1:
		return []byte("230 User logged in\r\n")
	case 2:
		return []byte("200 PORT command successful\r\n")
	case 3:
		return []byte("150 Opening data connection\r\n226 Transfer complete\r\n")
	default:
		return []byte("221 Goodbye\r\n")
	}
}

// POP3Exchange builds one side of a mailbox-retrieval dialogue, stepwise.
func POP3Exchange(rng *rand.Rand, step int, fromClient bool) []byte {
	if fromClient {
		switch step {
		case 0:
			return []byte("USER " + pick(rng, mailUsers) + "\r\n")
		case 1:
			return []byte("PASS ********\r\n")
		case 2:
			return []byte("STAT\r\n")
		case 3:
			return []byte("RETR 1\r\n")
		default:
			return []byte("QUIT\r\n")
		}
	}
	switch step {
	case 0, 1:
		return []byte("+OK\r\n")
	case 2:
		return []byte(fmt.Sprintf("+OK %d %d\r\n", 1+rng.Intn(9), 800+rng.Intn(4000)))
	case 3:
		return []byte(fmt.Sprintf("+OK message follows\r\nFrom: %s@%s\r\nSubject: %s\r\n\r\n%s\r\n.\r\n",
			pick(rng, mailUsers), pick(rng, mailDomains), words(rng, 3), words(rng, 40)))
	default:
		return []byte("+OK bye\r\n")
	}
}

var syslogFacilities = []string{"kern", "daemon", "auth", "cron", "local0"}

// SyslogMessage builds one RFC-3164-style event line.
func SyslogMessage(rng *rand.Rand) []byte {
	sp := getScratch()
	b := append((*sp)[:0], '<')
	b = strconv.AppendInt(b, int64(rng.Intn(191)), 10)
	b = append(b, ">node"...)
	b = appendPadLeft(b, uint64(rng.Intn(16)), 10, 2, '0')
	b = append(b, ' ')
	b = append(b, pick(rng, syslogFacilities)...)
	b = append(b, '[')
	b = strconv.AppendInt(b, int64(100+rng.Intn(30000)), 10)
	b = append(b, "]: "...)
	b = appendWords(b, rng, 6+rng.Intn(8))
	return finishPayload(sp, b)
}

// RandomPayload builds n uniformly random bytes. It exists only for the
// Lesson-1 ablation: replaying the same loads with meaningless data to
// show payload-inspecting engines are not realistically exercised.
func RandomPayload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
