package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/packet"
	"repro/internal/simtime"
)

// Endpoints lists the addresses sessions may run between.
type Endpoints struct {
	External []packet.Addr
	Cluster  []packet.Addr
}

// Emit receives each generated packet at the virtual time it should leave
// its source (packet.Src). Adapters route it into a netsim host or append
// it to a trace.
type Emit func(p *packet.Packet)

// Generator drives background sessions against the testbed: session
// arrivals form a Poisson process at a configurable rate, each session
// plays out a protocol dialogue in virtual time.
type Generator struct {
	sim     *simtime.Sim
	rng     *rand.Rand
	profile Profile
	eps     Endpoints
	emit    Emit
	seq     *packet.SeqCounter

	// handshakeRTT approximates one LAN round trip for TCP framing gaps.
	handshakeRTT time.Duration

	running bool
	rate    float64 // sessions per second

	// Stats.
	SessionsStarted uint64
	PacketsEmitted  uint64
	BytesEmitted    uint64
}

// NewGenerator builds a generator. seq may be shared with attack scenarios
// so every packet in a run has a unique sequence number.
func NewGenerator(sim *simtime.Sim, profile Profile, eps Endpoints, seq *packet.SeqCounter, emit Emit) (*Generator, error) {
	if len(eps.Cluster) == 0 {
		return nil, fmt.Errorf("traffic: profile %q needs at least one cluster endpoint", profile.Name)
	}
	if len(eps.External) == 0 {
		return nil, fmt.Errorf("traffic: profile %q needs at least one external endpoint", profile.Name)
	}
	if emit == nil {
		return nil, fmt.Errorf("traffic: nil emit")
	}
	if seq == nil {
		seq = &packet.SeqCounter{}
	}
	return &Generator{
		sim:          sim,
		rng:          sim.Stream("traffic/" + profile.Name),
		profile:      profile,
		eps:          eps,
		emit:         emit,
		seq:          seq,
		handshakeRTT: 500 * time.Microsecond,
	}, nil
}

// SessionRateForPps converts a target aggregate packet rate into a session
// arrival rate using the profile's empirical packets-per-session mean.
func (g *Generator) SessionRateForPps(targetPps float64) float64 {
	avg := g.profile.AvgPacketsPerSession(rand.New(rand.NewSource(1)), 300)
	if avg <= 0 {
		return targetPps
	}
	return targetPps / avg
}

// Start begins Poisson session arrivals at rate sessions/second.
func (g *Generator) Start(rate float64) error {
	if rate <= 0 {
		return fmt.Errorf("traffic: session rate %v must be positive", rate)
	}
	if g.running {
		return fmt.Errorf("traffic: generator already running")
	}
	g.rate = rate
	g.running = true
	g.scheduleNextArrival()
	return nil
}

// Stop halts new session arrivals; in-flight sessions finish.
func (g *Generator) Stop() { g.running = false }

func (g *Generator) scheduleNextArrival() {
	if !g.running {
		return
	}
	gap := time.Duration(g.expovariate(g.rate) * float64(time.Second))
	g.sim.MustSchedule(gap, func() {
		if !g.running {
			return
		}
		g.StartSession()
		g.scheduleNextArrival()
	})
}

// expovariate draws an exponential interarrival with the given rate.
func (g *Generator) expovariate(rate float64) float64 {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	return -math.Log(u) / rate
}

// StartSession begins one session immediately, chosen per the profile mix.
func (g *Generator) StartSession() {
	m := g.profile.Pick(g.rng)
	d := BuildDialogue(g.rng, m.Kind, g.profile.RandomPayloads)
	client, server := g.pickEndpoints(m.Locality)
	g.PlaySession(d, client, server, packet.Label{})
}

// pickEndpoints chooses client and server addresses for the locality.
func (g *Generator) pickEndpoints(loc Locality) (client, server packet.Addr) {
	pickFrom := func(xs []packet.Addr) packet.Addr { return xs[g.rng.Intn(len(xs))] }
	switch loc {
	case NorthSouth:
		return pickFrom(g.eps.External), pickFrom(g.eps.Cluster)
	case Outbound:
		return pickFrom(g.eps.Cluster), pickFrom(g.eps.External)
	default: // EastWest
		c := pickFrom(g.eps.Cluster)
		s := pickFrom(g.eps.Cluster)
		for s == c && len(g.eps.Cluster) > 1 {
			s = pickFrom(g.eps.Cluster)
		}
		return c, s
	}
}

// PlaySession schedules every packet of a framed dialogue between client
// and server, stamping each with the given ground-truth label. Attack
// scenarios reuse this path so malicious sessions are framed identically
// to benign ones.
func (g *Generator) PlaySession(d Dialogue, client, server packet.Addr, truth packet.Label) {
	cport := uint16(1024 + g.rng.Intn(64000))
	sport := d.Kind.WellKnownPort()
	pp := planPool.Get().(*[]TimedPacket)
	plan := appendDialogue((*pp)[:0], g.rng, d, g.handshakeRTT)
	g.SessionsStarted++
	for _, tp := range plan {
		p := tp.Packet
		p.Seq = g.seq.Next()
		p.Truth = truth
		if tp.FromClient {
			p.Src, p.Dst = client, server
			p.SrcPort, p.DstPort = cport, sport
		} else {
			p.Src, p.Dst = server, client
			p.SrcPort, p.DstPort = sport, cport
		}
		g.sim.MustSchedule(tp.Offset, func() {
			g.PacketsEmitted++
			g.BytesEmitted += uint64(p.WireLen())
			g.emit(p)
		})
	}
	// The scheduled closures capture only the packet pointers, so the
	// plan slice itself can go straight back to the pool — cleared so it
	// doesn't pin the packets beyond their own lifetimes.
	for i := range plan {
		plan[i].Packet = nil
	}
	*pp = plan[:0]
	planPool.Put(pp)
}

// TimedPacket is one planned transmission: a packet without addressing,
// plus its offset from session start and its direction.
type TimedPacket struct {
	Offset     time.Duration
	FromClient bool
	Packet     *packet.Packet
}

// planPool recycles the per-session framing plans PlaySession builds
// and immediately discards; at hundreds of sessions per virtual second
// the slice churn otherwise dominates the generator's allocations.
var planPool = sync.Pool{New: func() any { return new([]TimedPacket) }}

// FrameDialogue expands a dialogue into transport-framed timed packets:
// TCP sessions get a three-way handshake, MSS segmentation with PSH on
// final segments, and FIN teardown; UDP dialogues map steps directly to
// datagrams.
func FrameDialogue(rng *rand.Rand, d Dialogue, rtt time.Duration) []TimedPacket {
	return appendDialogue(nil, rng, d, rtt)
}

// appendDialogue is FrameDialogue onto a caller-owned plan slice, the
// form the generator uses with pooled plans.
func appendDialogue(plan []TimedPacket, rng *rand.Rand, d Dialogue, rtt time.Duration) []TimedPacket {
	var at time.Duration
	halfRTT := rtt / 2
	add := func(fromClient bool, flags packet.TCPFlags, payload []byte, gap time.Duration) {
		at += gap
		plan = append(plan, TimedPacket{
			Offset:     at,
			FromClient: fromClient,
			Packet:     &packet.Packet{Proto: d.Proto, Flags: flags, Payload: payload, TTL: 64},
		})
	}
	if d.Proto == packet.ProtoTCP {
		add(true, packet.SYN, nil, 0)
		add(false, packet.SYN|packet.ACK, nil, halfRTT)
		add(true, packet.ACK, nil, halfRTT)
	}
	for _, s := range d.Steps {
		payload := s.Payload
		gap := s.Gap
		if len(payload) == 0 {
			if d.Proto == packet.ProtoTCP {
				add(s.FromClient, packet.ACK, nil, gap)
			} else {
				add(s.FromClient, 0, nil, gap)
			}
			continue
		}
		for off := 0; off < len(payload); off += MSS {
			end := off + MSS
			if end > len(payload) {
				end = len(payload)
			}
			var flags packet.TCPFlags
			if d.Proto == packet.ProtoTCP {
				flags = packet.ACK
				if end == len(payload) {
					flags |= packet.PSH
				}
			}
			segGap := gap
			if off > 0 {
				// Back-to-back segments separated by a small pacing gap.
				segGap = time.Duration(50+rng.Intn(150)) * time.Microsecond
			}
			add(s.FromClient, flags, payload[off:end], segGap)
		}
	}
	if d.Proto == packet.ProtoTCP {
		add(true, packet.FIN|packet.ACK, nil, halfRTT)
		add(false, packet.ACK, nil, halfRTT)
	}
	return plan
}
