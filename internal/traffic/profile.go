package traffic

import (
	"fmt"
	"math/rand"
)

// Locality says where a session's endpoints live relative to the
// protected LAN. The paper stresses (Section 4) that "distributed systems
// with high levels of inter-host trust on a high-speed LAN will have
// distinctive traffic compared to that of a web server in an e-commerce
// shop"; locality is half of that distinction.
type Locality int

// Session localities.
const (
	// NorthSouth: external client to a LAN server.
	NorthSouth Locality = iota
	// EastWest: LAN host to LAN host (intra-cluster).
	EastWest
	// Outbound: LAN client to an external server.
	Outbound
)

// String names the locality.
func (l Locality) String() string {
	switch l {
	case NorthSouth:
		return "north-south"
	case EastWest:
		return "east-west"
	case Outbound:
		return "outbound"
	default:
		return fmt.Sprintf("locality(%d)", int(l))
	}
}

// MixEntry weights one application kind within a profile.
type MixEntry struct {
	Kind     AppKind
	Locality Locality
	Weight   float64
}

// Profile characterizes a site's background traffic.
type Profile struct {
	Name string
	Mix  []MixEntry
	// RandomPayloads replaces every payload with uniform random bytes of
	// the same length (the Lesson-1 ablation).
	RandomPayloads bool
}

// EcommerceEdge models the commercial web-shop traffic the paper says
// commercial IDSs are tuned for: mostly north-south HTTP with mail, DNS
// and a little interactive administration.
func EcommerceEdge() Profile {
	return Profile{
		Name: "ecommerce-edge",
		Mix: []MixEntry{
			{Kind: AppHTTP, Locality: NorthSouth, Weight: 62},
			{Kind: AppSMTP, Locality: NorthSouth, Weight: 12},
			{Kind: AppDNS, Locality: Outbound, Weight: 14},
			{Kind: AppInteractive, Locality: NorthSouth, Weight: 4},
			{Kind: AppBulk, Locality: NorthSouth, Weight: 6},
			{Kind: AppNTP, Locality: Outbound, Weight: 2},
		},
	}
}

// RealTimeCluster models the distributed real-time system the paper's
// sponsors run: dominated by tightly-cadenced east-west inter-node RPC and
// replication on a high-trust LAN, with thin north-south management.
func RealTimeCluster() Profile {
	return Profile{
		Name: "realtime-cluster",
		Mix: []MixEntry{
			{Kind: AppClusterRPC, Locality: EastWest, Weight: 58},
			{Kind: AppBulk, Locality: EastWest, Weight: 22},
			{Kind: AppDNS, Locality: EastWest, Weight: 6},
			{Kind: AppNTP, Locality: EastWest, Weight: 6},
			{Kind: AppInteractive, Locality: NorthSouth, Weight: 5},
			{Kind: AppHTTP, Locality: NorthSouth, Weight: 3},
		},
	}
}

// EnterpriseCampus models a general administrative network: mail-heavy
// with FTP distribution, mailbox polling, and centralized syslog — the
// third deployment flavour between the e-commerce edge and the real-time
// cluster.
func EnterpriseCampus() Profile {
	return Profile{
		Name: "enterprise-campus",
		Mix: []MixEntry{
			{Kind: AppHTTP, Locality: Outbound, Weight: 30},
			{Kind: AppSMTP, Locality: NorthSouth, Weight: 16},
			{Kind: AppPOP3, Locality: EastWest, Weight: 16},
			{Kind: AppFTP, Locality: EastWest, Weight: 10},
			{Kind: AppSyslog, Locality: EastWest, Weight: 12},
			{Kind: AppDNS, Locality: Outbound, Weight: 10},
			{Kind: AppInteractive, Locality: EastWest, Weight: 4},
			{Kind: AppNTP, Locality: Outbound, Weight: 2},
		},
	}
}

// WithRandomPayloads returns a copy of p with the Lesson-1 knob set.
func (p Profile) WithRandomPayloads() Profile {
	p.RandomPayloads = true
	p.Name += "+random-payloads"
	return p
}

// totalWeight sums mix weights.
func (p Profile) totalWeight() float64 {
	var t float64
	for _, m := range p.Mix {
		t += m.Weight
	}
	return t
}

// Pick draws a mix entry proportionally to weight.
func (p Profile) Pick(rng *rand.Rand) MixEntry {
	if len(p.Mix) == 0 {
		return MixEntry{Kind: AppHTTP, Locality: NorthSouth, Weight: 1}
	}
	x := rng.Float64() * p.totalWeight()
	for _, m := range p.Mix {
		x -= m.Weight
		if x < 0 {
			return m
		}
	}
	return p.Mix[len(p.Mix)-1]
}

// AvgPacketsPerSession estimates the mean framed packet count of a session
// under this profile by sampling dialogue synthesis.
func (p Profile) AvgPacketsPerSession(rng *rand.Rand, samples int) float64 {
	if samples <= 0 {
		samples = 200
	}
	total := 0
	for i := 0; i < samples; i++ {
		m := p.Pick(rng)
		total += BuildDialogue(rng, m.Kind, p.RandomPayloads).PacketCount()
	}
	return float64(total) / float64(samples)
}
