// Determinism contract of the parallel evaluation pipeline: fanning an
// evaluation out across a worker pool must not change a single byte of
// its output. Every experiment owns its own simulation and derives its
// RNG streams from the seed alone, so scheduling order between workers
// carries no information — these tests pin that property.
package repro_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eval"
	"repro/internal/products"
	"repro/internal/report"
)

// renderEvaluations runs the full product field at the given worker
// count and renders every scorecard report into one byte stream.
func renderEvaluations(t *testing.T, workers int) []byte {
	t.Helper()
	reg := core.StandardRegistry()
	evs, err := eval.EvaluateAll(context.Background(), products.All(), reg, eval.Options{Seed: 11, Quick: true, Workers: workers})
	if err != nil {
		t.Fatalf("EvaluateAll(context.Background(), workers=%d): %v", workers, err)
	}
	var buf bytes.Buffer
	for _, ev := range evs {
		if err := report.EvaluationReport(&buf, ev); err != nil {
			t.Fatalf("render: %v", err)
		}
	}
	return buf.Bytes()
}

// TestParallelEvaluationMatchesSerial is the tentpole acceptance test:
// serial (workers=1), machine-sized (workers=0), and oversubscribed
// (workers=8) runs of the full product matrix produce byte-identical
// rendered reports for the same seed.
func TestParallelEvaluationMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full product matrix ×3 is too slow for -short")
	}
	serial := renderEvaluations(t, 1)
	for _, workers := range []int{0, 8} {
		got := renderEvaluations(t, workers)
		if !bytes.Equal(serial, got) {
			t.Fatalf("workers=%d output differs from serial run (%d vs %d bytes)", workers, len(got), len(serial))
		}
	}
}

// TestParallelSweepMatchesSerial pins the same property for the
// sensitivity sweep, whose points fan out across the pool.
func TestParallelSweepMatchesSerial(t *testing.T) {
	run := func(workers int) *eval.SweepResult {
		res, err := eval.SensitivitySweep(context.Background(), products.StreamHunter(), eval.SweepOptions{
			Seed: 23, Points: 5, Workers: workers,
			TrainFor: 5 * time.Second, RunFor: 8 * time.Second, Pps: 200,
		})
		if err != nil {
			t.Fatalf("SensitivitySweep(context.Background(), workers=%d): %v", workers, err)
		}
		return res
	}
	serial := run(1)
	parallel := run(4)
	if serial.EER != parallel.EER || serial.EERError != parallel.EERError || serial.EERValid != parallel.EERValid {
		t.Fatalf("EER differs: serial %+v parallel %+v", serial, parallel)
	}
	if len(serial.Points) != len(parallel.Points) {
		t.Fatalf("point counts differ: %d vs %d", len(serial.Points), len(parallel.Points))
	}
	for i, sp := range serial.Points {
		pp := parallel.Points[i]
		if sp.Sensitivity != pp.Sensitivity || sp.TypeI != pp.TypeI || sp.TypeII != pp.TypeII {
			t.Fatalf("sweep point %d differs: serial %+v parallel %+v", i, sp, pp)
		}
	}
}

// TestEvaluationSharesCompiledCorpus verifies the evaluation-scale
// consequence of the matcher cache: running the whole product field
// compiles each distinct signature corpus at most once, no matter how
// many engines the testbeds instantiate.
func TestEvaluationSharesCompiledCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("full product matrix is too slow for -short")
	}
	builds0, _ := detect.MatcherCacheStats()
	renderEvaluations(t, 0)
	buildsAfterFirst, _ := detect.MatcherCacheStats()
	renderEvaluations(t, 0)
	buildsAfterSecond, hits := detect.MatcherCacheStats()

	firstRun := buildsAfterFirst - builds0
	secondRun := buildsAfterSecond - buildsAfterFirst
	if secondRun != 0 {
		t.Fatalf("second identical evaluation compiled %d new automata, want 0 (first run: %d, total hits %d)",
			secondRun, firstRun, hits)
	}
}
