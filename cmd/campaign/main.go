// Command campaign runs durable, crash-safe evaluation campaigns: a
// declared set of experiments (full product evaluations, sensitivity
// sweeps, fault-severity sweeps, trace replays) journaled to an
// append-only manifest so that a crash, Ctrl-C, or -timeout at any
// instant loses at most the in-flight experiments. Re-running resumes
// from the journal and re-executes only what is missing or failed; a
// resumed campaign's final report is byte-identical to an
// uninterrupted one with the same seed.
//
// Usage:
//
//	campaign plan   -dir DIR [-name N] [-seed N] [-quick] [-products a,b]
//	                [-evals] [-sweep-points N] [-scenarios f.json,g.json]
//	                [-fault-points N] [-traces t.idtr] [-sensitivity 0.6]
//	campaign run    -dir DIR [-workers N] [-timeout D] [-stall D]
//	                [-retries N] [-max N] [-telemetry] [-telemetry-jsonl F]
//	                [-listen ADDR] [-trace-out F]
//	campaign resume -dir DIR ...   (alias of run)
//	campaign status -dir DIR
//
// The journal is the commit point: an experiment's result file is
// written atomically before its journal line, so "journaled" always
// means "result on disk". -max N stops cleanly after N newly completed
// experiments (deterministic interruption for smoke tests); a later
// run/resume picks up the rest.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "plan":
		cmdPlan(os.Args[2:])
	case "run", "resume":
		cmdRun(os.Args[2:])
	case "status":
		cmdStatus(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: campaign plan|run|resume|status -dir DIR [flags]")
	os.Exit(2)
}

// csv splits a comma-separated flag, dropping empty elements.
func csv(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func cmdPlan(args []string) {
	fs := flag.NewFlagSet("campaign plan", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required)")
	name := fs.String("name", "campaign", "campaign name")
	seed := fs.Int64("seed", 11, "simulation seed for every experiment")
	quick := fs.Bool("quick", false, "shrink experiments to smoke-test scale")
	productsFlag := fs.String("products", "", "comma-separated product names (empty = all)")
	evals := fs.Bool("evals", false, "include a full scorecard evaluation per product")
	sweepPoints := fs.Int("sweep-points", 0, "sensitivity sweep points per product (0 = none)")
	scenarios := fs.String("scenarios", "", "comma-separated fault scenario JSON files")
	faultPoints := fs.Int("fault-points", 5, "severity points per fault scenario")
	traces := fs.String("traces", "", "comma-separated trace files to replay")
	sensitivity := fs.Float64("sensitivity", 0.6, "sensitivity for trace replays")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	spec := &campaign.Spec{
		Name: *name, Seed: *seed, Quick: *quick,
		Products: csv(*productsFlag), Evals: *evals,
		SweepPoints:    *sweepPoints,
		FaultScenarios: csv(*scenarios), FaultPoints: *faultPoints,
		Traces: csv(*traces), Sensitivity: *sensitivity,
	}
	exps, err := spec.Plan()
	if err != nil {
		fatal(err)
	}
	if err := campaign.SavePlan(*dir, spec); err != nil {
		fatal(err)
	}
	fmt.Printf("planned %d experiments in %s:\n", len(exps), *dir)
	for _, ex := range exps {
		fmt.Printf("  %s\n", ex.ID)
	}
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("campaign run", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required)")
	workers := fs.Int("workers", 0, "experiment-level worker pool (0 = all cores)")
	timeout := fs.Duration("timeout", 0, "abort the run after this wall-clock duration (0 = none)")
	stall := fs.Duration("stall", 2*time.Minute, "stall watchdog: cancel an experiment with no progress for this long (negative = off)")
	retries := fs.Int("retries", 1, "retries per failed experiment")
	maxNew := fs.Int("max", 0, "stop cleanly after this many newly completed experiments (0 = run to completion)")
	o := cli.AddObsFlags(fs)
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	ctx, stop := cli.Context(*timeout)
	defer stop()
	defer o.Close()

	// The runner is always instrumented — its counters are cheap and the
	// live endpoint needs them — but export only happens under the flags.
	reg := o.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &campaign.Runner{
		Dir:          *dir,
		Workers:      *workers,
		MaxAttempts:  *retries + 1,
		StallTimeout: *stall,
		MaxNew:       *maxNew,
		Obs:          reg,
		Log:          os.Stderr,
	}
	// Pre-register the outcome counters so the first /metrics scrape —
	// possibly before any experiment has committed — already exposes the
	// campaign family at zero instead of an empty page.
	for _, c := range []string{"campaign.completed", "campaign.failed", "campaign.retried", "campaign.skipped"} {
		reg.Counter(c)
	}
	o.SetSnapshot(reg.Snapshot)
	o.SetProgress(func() any { return r.Progress() })
	if serr := o.Serve(ctx); serr != nil {
		fatal(serr)
	}
	out, err := r.Run(ctx)
	if ferr := o.Finish(nil); ferr != nil {
		fatal(ferr)
	}
	if err != nil && !cli.Interrupted(err) {
		fatal(err)
	}

	st, lerr := campaign.Load(*dir)
	if lerr != nil {
		fatal(lerr)
	}
	if st.Complete() {
		if rerr := report.CampaignReport(os.Stdout, st, core.StandardRegistry()); rerr != nil {
			fatal(rerr)
		}
		return
	}
	fmt.Printf("campaign %q: %d/%d experiments committed (%d new this run)\n",
		st.Spec.Name, st.Done(), len(st.Experiments), out.Completed)
	if err != nil && cli.Interrupted(err) {
		cli.Banner(os.Stdout, st.Done(), len(st.Experiments))
		os.Exit(1)
	}
	fmt.Println("run `campaign resume` to continue")
}

func cmdStatus(args []string) {
	fs := flag.NewFlagSet("campaign status", flag.ExitOnError)
	dir := fs.String("dir", "", "campaign directory (required)")
	full := fs.Bool("report", false, "render the full report for whatever is committed")
	fs.Parse(args)
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}
	st, err := campaign.Load(*dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign %q (seed %d): %d/%d experiments committed\n",
		st.Spec.Name, st.Spec.Seed, st.Done(), len(st.Experiments))
	for _, ex := range st.Experiments {
		state := "pending"
		if e, ok := st.Entries[ex.ID]; ok {
			state = string(e.Status)
			if e.Status != campaign.StatusDone && e.Error != "" {
				state += ": " + e.Error
			}
		}
		fmt.Printf("  %-44s %s\n", ex.ID, state)
	}
	if *full {
		fmt.Println()
		if err := report.CampaignReport(os.Stdout, st, core.StandardRegistry()); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
