// Command trafficgen generates canned evaluation traces: background
// traffic from a site profile with the standard attack campaign layered
// on top, written in the streaming chunked binary format IDT2 (with
// ground-truth sidecar) or as JSON lines. These are the "canned data
// with known attack content" the paper's Lesson 2 calls for.
//
// Binary output streams: packets are encoded chunk-by-chunk as the
// simulation emits them, so generation memory is O(chunk) regardless of
// trace length. JSON output still materializes the trace first.
//
// Usage:
//
//	trafficgen -o trace.idtr [-profile ecommerce|cluster] [-seconds 60]
//	           [-pps 600] [-seed 21] [-attacks] [-strength 1.0]
//	           [-random-payloads] [-json] [-hosts 6] [-external 3]
//	           [-segments 0] [-timeout 5m] [-telemetry]
//	           [-telemetry-jsonl F] [-listen ADDR] [-trace-out F]
//
// With -segments N the trace models the sharded large topology: N
// per-segment background generators (each with its own RNG stream and
// its own 10.(s+1).x.y /16 host block, -hosts hosts per segment) share
// one virtual clock, sequence space, and output trace, and the attack
// campaign spreads across the union of segments. Aggregate -pps is
// split evenly across segments.
//
// File output is atomic: the trace streams into a temp file in the
// output directory and is renamed into place only after the footer is
// written, so a crash or Ctrl-C never leaves a torn trace at -o.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/attack"
	"repro/internal/cli"
	"repro/internal/fsio"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/traffic"
)

func main() {
	out := flag.String("o", "", "output file (required; '-' for stdout)")
	profileName := flag.String("profile", "ecommerce", "traffic profile: ecommerce, cluster, or campus")
	seconds := flag.Float64("seconds", 60, "trace duration in virtual seconds")
	pps := flag.Float64("pps", 600, "target background packet rate")
	seed := flag.Int64("seed", 21, "generation seed")
	withAttacks := flag.Bool("attacks", true, "layer the standard attack campaign over the background")
	strength := flag.Float64("strength", 1.0, "attack intensity multiplier")
	randomPayloads := flag.Bool("random-payloads", false, "replace payloads with random bytes (Lesson-1 ablation)")
	asJSON := flag.Bool("json", false, "write JSON lines instead of binary")
	hosts := flag.Int("hosts", 6, "cluster host count (per segment with -segments)")
	external := flag.Int("external", 3, "external host count")
	segments := flag.Int("segments", 0, "per-segment generators over the large-topology address plan (0 = single flat cluster)")
	timeout := flag.Duration("timeout", 0, "abort generation after this wall-clock duration (0 = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	o := cli.AddObsFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	defer o.Close()

	if *out == "" {
		fatal(fmt.Errorf("-o is required"))
	}
	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	reg := o.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o.SetSnapshot(reg.Snapshot)
	if err := o.Serve(ctx); err != nil {
		fatal(err)
	}
	var profile traffic.Profile
	switch *profileName {
	case "ecommerce":
		profile = traffic.EcommerceEdge()
	case "cluster":
		profile = traffic.RealTimeCluster()
	case "campus":
		profile = traffic.EnterpriseCampus()
	default:
		fatal(fmt.Errorf("unknown profile %q", *profileName))
	}
	if *randomPayloads {
		profile = profile.WithRandomPayloads()
	}

	// File output goes through an atomic temp file: commit renames it
	// into place, and any fatal path (including Ctrl-C) aborts the temp
	// so -o never holds a torn trace.
	var f io.Writer
	commit := func() error { return nil }
	if *out == "-" {
		f = os.Stdout
	} else {
		af, err := fsio.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer af.Abort()
		cleanup = af.Abort // fatal exits without running defers
		f = af
		commit = af.Commit
	}

	sim := simtime.New(*seed)
	sim.SetInterrupt(ctx.Err)
	var emit func(p *packet.Packet)
	var rec *trace.Recorder        // JSON path: whole trace in memory
	var srec *trace.StreamRecorder // binary path: O(chunk) streaming
	var sw *trace.Writer
	if *asJSON {
		rec = trace.NewRecorder(sim, profile.Name)
		emit = rec.Emit
	} else {
		sw, err = trace.NewWriter(f, profile.Name, *seed)
		if err != nil {
			fatal(err)
		}
		srec = trace.NewStreamRecorder(sim, sw)
		emit = srec.Emit
	}

	if *segments < 0 || *segments > 254 {
		fatal(fmt.Errorf("-segments %d out of range [0, 254]", *segments))
	}
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{} // union of all segments; the attack campaign draws from it
	for i := 0; i < *external; i++ {
		eps.External = append(eps.External, externalAddr(i))
	}
	var gens []*traffic.Generator
	if *segments > 0 {
		// One generator per leaf segment. The profile-name suffix gives
		// each its own deterministic RNG stream, so the per-segment
		// traffic mix is independent even though all segments share one
		// clock, sequence space, and trace.
		for s := 0; s < *segments; s++ {
			seg := profile
			seg.Name = fmt.Sprintf("%s/seg%03d", profile.Name, s)
			segEps := traffic.Endpoints{External: eps.External}
			for h := 0; h < *hosts; h++ {
				addr := netsim.LargeAddr(s, h)
				segEps.Cluster = append(segEps.Cluster, addr)
				eps.Cluster = append(eps.Cluster, addr)
			}
			gen, err := traffic.NewGenerator(sim, seg, segEps, seq, emit)
			if err != nil {
				fatal(err)
			}
			if err := gen.Start(gen.SessionRateForPps(*pps / float64(*segments))); err != nil {
				fatal(err)
			}
			gens = append(gens, gen)
		}
	} else {
		for i := 0; i < *hosts; i++ {
			eps.Cluster = append(eps.Cluster, clusterAddr(i))
		}
		gen, err := traffic.NewGenerator(sim, profile, eps, seq, emit)
		if err != nil {
			fatal(err)
		}
		if err := gen.Start(gen.SessionRateForPps(*pps)); err != nil {
			fatal(err)
		}
		gens = append(gens, gen)
	}
	dur := time.Duration(*seconds * float64(time.Second))
	var camp *attack.Campaign
	if *withAttacks {
		ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Emit: emit, Eps: eps, Gen: gens[0]}
		camp = attack.NewCampaign(ctx)
		if err := camp.SpreadAcross(dur/10, dur*8/10, attack.StandardScenarios(attack.Intensity(*strength))); err != nil {
			fatal(err)
		}
	}
	sp := reg.StartSpan("trafficgen.generate")
	sim.RunUntil(dur)
	for _, g := range gens {
		g.Stop()
	}
	sim.Run()
	sp.End()
	if err := sim.Interrupted(); err != nil {
		fatal(fmt.Errorf("generation interrupted (%v) — no trace written", err))
	}

	if *asJSON {
		if camp != nil {
			rec.SetIncidents(camp.Incidents())
		}
		tr := rec.Trace()
		s := tr.Summarize()
		fmt.Fprintf(os.Stderr, "trace: %d packets (%d malicious) over %v, %d incidents, %.0f pps avg, %d bytes\n",
			s.Packets, s.MaliciousPkts, s.Duration.Round(time.Millisecond), s.Incidents, s.AvgPps, s.Bytes)
		if err := tr.WriteJSONL(f); err != nil {
			fatal(err)
		}
		if err := commit(); err != nil {
			fatal(err)
		}
		publishTraceStats(reg, uint64(s.Packets), uint64(s.MaliciousPkts), uint64(s.Bytes), 0)
		finish(o, stopProf)
		return
	}

	if err := srec.Err(); err != nil {
		fatal(err)
	}
	var incidents int
	if camp != nil {
		sw.SetIncidents(camp.Incidents())
		incidents = len(camp.Incidents())
	}
	if err := sw.Close(); err != nil {
		fatal(err)
	}
	if err := commit(); err != nil {
		fatal(err)
	}
	s := sw.Stats()
	avgPps := 0.0
	if d := s.Duration(); d > 0 {
		avgPps = float64(s.Packets) / d.Seconds()
	}
	fmt.Fprintf(os.Stderr, "trace: %d packets (%d malicious) over %v, %d incidents, %.0f pps avg, %d bytes (%d chunks)\n",
		s.Packets, s.MaliciousPkts, s.Duration().Round(time.Millisecond), incidents, avgPps, s.Bytes, s.Chunks)
	publishTraceStats(reg, s.Packets, s.MaliciousPkts, s.Bytes, s.Chunks)
	finish(o, stopProf)
}

// publishTraceStats records the final trace shape as gauges so the
// telemetry dump carries the same numbers the stderr summary prints.
func publishTraceStats(reg *obs.Registry, packets, malicious, bytes uint64, chunks int) {
	reg.Gauge("trafficgen.packets").Set(int64(packets))
	reg.Gauge("trafficgen.malicious").Set(int64(malicious))
	reg.Gauge("trafficgen.bytes").Set(int64(bytes))
	reg.Gauge("trafficgen.chunks").Set(int64(chunks))
}

// finish exports telemetry per the obs flags and stops any profiles.
func finish(o *cli.ObsFlags, stopProf func() error) {
	if err := o.Finish(nil); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func clusterAddr(i int) packet.Addr {
	return packet.IPv4(10, 1, byte(i/250+1), byte(i%250+1))
}

func externalAddr(i int) packet.Addr {
	return packet.IPv4(203, 0, byte(i/250+1), byte(i%250+1))
}

// cleanup aborts the in-progress atomic trace write on fatal exit, so
// no .tmp file is left behind.
var cleanup func()

func fatal(err error) {
	if cleanup != nil {
		cleanup()
	}
	fmt.Fprintln(os.Stderr, "trafficgen:", err)
	os.Exit(1)
}
