// Command idsevald is the online evaluation daemon: it accepts IDT2
// traces as chunked uploads over TCP (ISF2 frames) and HTTP, evaluates
// each against the product matrix through the crash-safe campaign
// runner, and streams incremental results plus the final scorecard back
// to the submitter.
//
// The daemon is built to be killed. Every ack is durable before it is
// sent, every accepted stream is journaled before evaluation, and a
// restart resumes exactly where the previous process died: clients are
// told the next expected chunk ordinal at Hello, interrupted
// evaluations re-run only their missing experiments, and the resumed
// scorecard is byte-identical to an uninterrupted run (make chaossmoke
// proves this with a real SIGKILL).
//
// Usage:
//
//	idsevald -dir /var/lib/idsevald [-tcp 127.0.0.1:7643] [-http 127.0.0.1:7644]
//
// Both listen addresses accept ":0"; the bound addresses are printed to
// stderr as "idsevald: tcp listening on ..." / "idsevald: http
// listening on ...". SIGINT or SIGTERM starts a graceful drain bounded
// by -drain-timeout: listeners close, /healthz flips to draining (503),
// in-flight evaluations finish, and queued-but-unstarted work stays
// durable for the next start. A second signal hard-exits immediately —
// which the durability contracts are built to survive.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/obs/httpexport"
	"repro/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir          = flag.String("dir", "", "durable service root (required; created if missing)")
		tcpAddr      = flag.String("tcp", "127.0.0.1:7643", "ISF2 frame listener address (\":0\" picks a port; empty disables)")
		httpAddr     = flag.String("http", "", "HTTP ingest + observability listener address (empty disables)")
		maxStreams   = flag.Int("max-streams", 0, "admission ceiling on concurrently uploading streams (0 = default 32)")
		queueDepth   = flag.Int("queue-depth", 0, "bounded evaluation queue depth (0 = default 8)")
		evalWorkers  = flag.Int("eval-workers", 0, "concurrent stream evaluations (0 = default 2)")
		spoolMB      = flag.Int64("max-spool-mb", 0, "spool byte budget across open streams, MiB (0 = default 256)")
		idleExpiry   = flag.Duration("idle-expiry", 0, "shed an open stream after this much inactivity (0 = default 10m)")
		stallTimeout = flag.Duration("stall-timeout", 0, "evaluation heartbeat watchdog (0 = default 2m, negative disables)")
		retryAfter   = flag.Duration("retry-after", 0, "retry hint attached to backpressure rejections (0 = default 2s)")
		connTimeout  = flag.Duration("conn-timeout", 0, "per-frame TCP read/write deadline (0 = default 30s)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGINT/SIGTERM")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "idsevald: -dir is required")
		flag.Usage()
		return 2
	}
	if *tcpAddr == "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "idsevald: at least one of -tcp and -http must be set")
		return 2
	}

	ctx, stop := cli.Context(0)
	defer stop()

	reg := obs.NewRegistry()
	if *httpAddr != "" {
		reg.EnableFlight(0)
	}
	svc, err := serve.Open(serve.Config{
		Dir:           *dir,
		MaxStreams:    *maxStreams,
		QueueDepth:    *queueDepth,
		EvalWorkers:   *evalWorkers,
		MaxSpoolBytes: *spoolMB << 20,
		IdleExpiry:    *idleExpiry,
		StallTimeout:  *stallTimeout,
		RetryAfter:    *retryAfter,
		ConnTimeout:   *connTimeout,
		Obs:           reg,
		Log:           os.Stderr,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "idsevald:", err)
		return 1
	}

	var tcpLn net.Listener
	if *tcpAddr != "" {
		tcpLn, err = net.Listen("tcp", *tcpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idsevald:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "idsevald: tcp listening on %s\n", tcpLn.Addr())
		go svc.ServeTCP(tcpLn)
	}

	var httpSrv *http.Server
	if *httpAddr != "" {
		obsHandler, err := httpexport.NewHandler(httpexport.Config{
			Snapshot: svc.Snapshot,
			Progress: svc.Progress,
			Health:   svc.Health,
			Flight:   reg.Flight,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "idsevald:", err)
			return 1
		}
		httpLn, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "idsevald:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "idsevald: http listening on %s\n", httpLn.Addr())
		httpSrv = &http.Server{Handler: svc.HTTPHandler(obsHandler)}
		go httpSrv.Serve(httpLn)
	}

	<-ctx.Done()
	fmt.Fprintf(os.Stderr, "idsevald: shutdown signal — draining (bound %v)\n", *drainTimeout)

	// Stop admitting first: close the frame listener and shut the HTTP
	// server down concurrently with the drain so held-open waits
	// (scorecard long-polls) end when the run context cancels.
	if tcpLn != nil {
		tcpLn.Close()
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if httpSrv != nil {
		go httpSrv.Shutdown(dctx)
	}
	drainErr := svc.Drain(dctx)

	// The final ledger line is the operator's audit trail: every
	// submitted chunk in exactly one class, even across this shutdown.
	counts, _ := json.Marshal(svc.Counts())
	fmt.Fprintf(os.Stderr, "idsevald: ledger %s\n", counts)
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "idsevald:", drainErr)
		return 1
	}
	fmt.Fprintln(os.Stderr, "idsevald: drained cleanly")
	return 0
}
