// Command scorecard works with the methodology's data artifacts without
// running experiments: it derives metric weights from a user requirements
// file (Section 3.3, Figure 6), evaluates stored scorecard JSON files
// under those weights (Figure 5), and prints the Figure-6 worked example.
//
// Usage:
//
//	scorecard -requirements reqs.json card1.json card2.json ...
//	scorecard -posture realtime card1.json ...
//	scorecard -example            # print the Figure-6 worked example
//	scorecard -emit-posture realtime   # write a posture as requirements JSON
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/requirements"
)

func main() {
	reqFile := flag.String("requirements", "", "requirements JSON file to derive weights from")
	posture := flag.String("posture", "", "built-in posture instead of a file: realtime or distributed")
	example := flag.Bool("example", false, "print the Figure-6 worked example and exit")
	emitPosture := flag.String("emit-posture", "", "write the named posture as requirements JSON to stdout")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	o := cli.AddObsFlags(flag.CommandLine)
	flag.Parse()
	defer o.Close()

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fatal(err)
		}
	}()

	reg := core.StandardRegistry()

	if *emitPosture != "" {
		s, err := postureSet(*emitPosture)
		if err != nil {
			fatal(err)
		}
		if err := s.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	if *example {
		s, w, err := requirements.Figure6Example(reg)
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 6 — requirement to metric weighting example")
		fmt.Println("\nRequirements (least to most important):")
		fmt.Print(s.Describe())
		fmt.Println("\nDerived metric weights (nonzero):")
		for _, id := range requirements.SortedNonZero(w) {
			m, _ := reg.Get(id)
			fmt.Printf("  %-35s %g\n", m.Name, w[id])
		}
		return
	}

	var set *requirements.Set
	switch {
	case *reqFile != "":
		f, err := os.Open(*reqFile)
		if err != nil {
			fatal(err)
		}
		set, err = requirements.ReadJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *posture != "":
		set, err = postureSet(*posture)
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("one of -requirements, -posture, -example, -emit-posture is required"))
	}

	w, err := requirements.DeriveWeights(set, reg)
	if err != nil {
		fatal(err)
	}
	// Derived weights land in the telemetry registry so a JSONL or
	// Prometheus export carries the weighting evidence beside the
	// ranking; stdout stays byte-identical either way.
	if oreg := o.Registry(); oreg != nil {
		for _, id := range requirements.SortedNonZero(w) {
			oreg.Gauge("scorecard.weight." + id + "_ppm").Set(int64(w[id] * 1e6))
		}
	}
	fmt.Println("Requirements:")
	fmt.Print(set.Describe())
	fmt.Println("\nDerived weights (nonzero):")
	for _, id := range requirements.SortedNonZero(w) {
		m, _ := reg.Get(id)
		fmt.Printf("  %-35s %g\n", m.Name, w[id])
	}

	if flag.NArg() == 0 {
		if err := o.Finish(nil); err != nil {
			fatal(err)
		}
		return
	}
	var cards []*core.Scorecard
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		card, err := core.ReadScorecardJSON(f, reg)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		cards = append(cards, card)
	}
	ranked, err := core.Rank(cards, w)
	if err != nil {
		fatal(err)
	}
	fmt.Println("\nWeighted ranking (Figure 5):")
	if err := report.Ranking(os.Stdout, ranked); err != nil {
		fatal(err)
	}
	if oreg := o.Registry(); oreg != nil {
		for i, ws := range ranked {
			oreg.Gauge("scorecard.ranking." + ws.System + ".position").Set(int64(i + 1))
			oreg.Gauge("scorecard.ranking." + ws.System + ".total_ppm").Set(int64(ws.Total * 1e6))
		}
		if err := o.Finish(nil); err != nil {
			fatal(err)
		}
	}
}

func postureSet(name string) (*requirements.Set, error) {
	switch name {
	case "realtime":
		return requirements.RealTimeEmphasis(), nil
	case "distributed":
		return requirements.DistributedEmphasis(), nil
	default:
		return nil, fmt.Errorf("unknown posture %q (want realtime or distributed)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scorecard:", err)
	os.Exit(1)
}
