// Command chaossmoke is the CI crash-tolerance smoke for idsevald. It
// proves the daemon's central promise — kill -9 at the worst moment
// loses nothing — the way an operator would experience it:
//
//  1. Generate a labeled IDT2 trace with the trafficgen binary.
//  2. Reference run: start idsevald, stream the trace over TCP, and
//     keep the scorecard from an uninterrupted evaluation.
//  3. Chaos run: start a fresh idsevald, stream half the chunks, then
//     SIGKILL the daemon mid-stream (no drain, no warning).
//  4. Restart idsevald on the same directory. The Hello ack must report
//     a durable resume point covering every acked chunk; upload resumes
//     from there — acked work is never re-sent.
//  5. The resumed evaluation's scorecard must be byte-identical to the
//     reference, and the final ledger must satisfy the exact-accounting
//     invariant.
//
// Finally the surviving daemon is drained with SIGTERM and must exit 0.
//
// Usage:
//
//	chaossmoke -bin path/to/idsevald -gen path/to/trafficgen -dir /tmp/chaos
//
// The directory is removed and recreated; the binaries are built by the
// Makefile's chaossmoke target. Pure Go — no shell plumbing.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/serve"
)

// listenPrefix is the stderr line idsevald prints once its frame
// listener is bound; the address follows (needed because -tcp uses :0).
const listenPrefix = "idsevald: tcp listening on "

// chunkSize splits the trace so a half-upload leaves a meaningful
// resume point (the generated trace is a few hundred KiB).
const chunkSize = 32 << 10

// streamName is deliberately identical across the reference and chaos
// runs: the scorecard must depend only on the trace and the evaluation
// parameters, never on which directory or daemon produced it.
const streamName = "chaos"

var meta = serve.StreamMeta{
	Name:        streamName,
	Seed:        7,
	Quick:       true,
	Products:    []string{"TrueSecure", "StreamHunter"},
	Sensitivity: 0.6,
}

func main() {
	bin := flag.String("bin", "", "idsevald binary to drive (required)")
	gen := flag.String("gen", "", "trafficgen binary for the input trace (required)")
	dir := flag.String("dir", "", "scratch directory (required; removed and recreated)")
	flag.Parse()
	if *bin == "" || *gen == "" || *dir == "" {
		fatal(fmt.Errorf("-bin, -gen, and -dir are required"))
	}

	if err := os.RemoveAll(*dir); err != nil {
		fatal(err)
	}
	tracePath := filepath.Join(*dir, "input.idt2")
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	if out, err := exec.Command(*gen, "-o", tracePath, "-seconds", "15", "-pps", "40",
		"-seed", "11").CombinedOutput(); err != nil {
		fatal(fmt.Errorf("trafficgen: %w\n%s", err, out))
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		fatal(err)
	}
	chunks := split(data, chunkSize)
	fmt.Printf("chaossmoke: trace %d bytes in %d chunks\n", len(data), len(chunks))
	if len(chunks) < 4 {
		fatal(fmt.Errorf("trace too small for a meaningful mid-stream kill (%d chunks)", len(chunks)))
	}

	// Reference: one uninterrupted daemon lifetime.
	ref := startDaemon(*bin, filepath.Join(*dir, "ref"))
	refCard := upload(ref.addr, chunks, 0)
	ref.drain()
	fmt.Printf("chaossmoke: reference scorecard %d bytes\n", len(refCard))

	// Chaos: half the chunks, then SIGKILL — the daemon gets no chance
	// to flush, drain, or say goodbye.
	chaosDir := filepath.Join(*dir, "chaos")
	d := startDaemon(*bin, chaosDir)
	half := len(chunks) / 2
	c, err := serve.Dial(d.addr)
	if err != nil {
		fatal(err)
	}
	if err := c.Hello(meta); err != nil {
		fatal(err)
	}
	for i := 0; i < half; i++ {
		if err := c.SendChunkRetry(chunks[i], 5, 100*time.Millisecond); err != nil {
			fatal(fmt.Errorf("chunk %d: %w", i, err))
		}
	}
	c.Close()
	if err := d.cmd.Process.Kill(); err != nil {
		fatal(fmt.Errorf("SIGKILL: %w", err))
	}
	if _, err := awaitExit(d.cmd, 10*time.Second); err != nil {
		fatal(err)
	}
	fmt.Printf("chaossmoke: SIGKILL after %d/%d chunks\n", half, len(chunks))

	// Restart on the same directory: Hello must hand back a durable
	// resume point covering everything that was acked.
	d = startDaemon(*bin, chaosDir)
	c, err = serve.Dial(d.addr)
	if err != nil {
		fatal(err)
	}
	if err := c.Hello(meta); err != nil {
		fatal(err)
	}
	if c.State != serve.StateOpen {
		fatal(fmt.Errorf("resumed stream state %q, want %q", c.State, serve.StateOpen))
	}
	if int(c.Next) != half {
		fatal(fmt.Errorf("resume point %d, want %d — an acked chunk was lost or re-requested", c.Next, half))
	}
	fmt.Printf("chaossmoke: restart resumes at chunk %d — acked work survived kill -9\n", c.Next)
	var sent int64
	for i := 0; i < int(c.Next); i++ {
		sent += int64(len(chunks[i]))
	}
	for i := int(c.Next); i < len(chunks); i++ {
		if err := c.SendChunkRetry(chunks[i], 5, 100*time.Millisecond); err != nil {
			fatal(fmt.Errorf("resumed chunk %d: %w", i, err))
		}
		sent += int64(len(chunks[i]))
	}
	if err := c.FinishRetry(uint64(len(chunks)), sent, 5, 100*time.Millisecond); err != nil {
		fatal(err)
	}
	results := 0
	chaosCard, err := c.Await(3*time.Minute, func(kind serve.EventKind, _ []byte) {
		if kind == serve.EventResult {
			results++
		}
	})
	if err != nil {
		fatal(err)
	}
	c.Close()
	fmt.Printf("chaossmoke: resumed evaluation streamed %d incremental results\n", results)

	if !bytes.Equal(chaosCard, refCard) {
		fatal(fmt.Errorf("scorecard after kill -9 + resume differs from uninterrupted run:\n--- reference ---\n%s\n--- chaos ---\n%s",
			refCard, chaosCard))
	}
	ledger := d.drain()
	fmt.Printf("chaossmoke: final ledger %s\n", ledger)
	fmt.Println("chaossmoke: ok — scorecard byte-identical across SIGKILL, restart, and resume")
}

// upload streams chunks[from:] on a fresh connection and returns the
// scorecard.
func upload(addr string, chunks [][]byte, from int) []byte {
	c, err := serve.Dial(addr)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	if err := c.Hello(meta); err != nil {
		fatal(err)
	}
	var sent int64
	for i := from; i < len(chunks); i++ {
		if err := c.SendChunkRetry(chunks[i], 5, 100*time.Millisecond); err != nil {
			fatal(fmt.Errorf("chunk %d: %w", i, err))
		}
		sent += int64(len(chunks[i]))
	}
	if err := c.FinishRetry(uint64(len(chunks)), sent, 5, 100*time.Millisecond); err != nil {
		fatal(err)
	}
	card, err := c.Await(3*time.Minute, nil)
	if err != nil {
		fatal(err)
	}
	return card
}

func split(data []byte, size int) [][]byte {
	var chunks [][]byte
	for len(data) > 0 {
		n := size
		if n > len(data) {
			n = len(data)
		}
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

// daemon is one idsevald process under test.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *stderrSink
}

// startDaemon launches idsevald on dir and waits for its frame listener.
// Stderr goes through a Writer sink rather than StderrPipe: exec.Wait
// flushes a Writer completely before returning, so the post-exit drain
// lines (the ledger audit) are never raced away.
func startDaemon(bin, dir string) *daemon {
	cmd := exec.Command(bin, "-dir", dir, "-tcp", "127.0.0.1:0", "-stall-timeout", "-1s")
	sink := newStderrSink()
	cmd.Stderr = sink
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	addr, err := sink.awaitListenAddr(30 * time.Second)
	if err != nil {
		cmd.Process.Kill()
		fatal(err)
	}
	return &daemon{cmd: cmd, addr: addr, stderr: sink}
}

// drain SIGTERMs the daemon, requires a clean exit, and returns the
// ledger audit line it printed on the way out.
func (d *daemon) drain() string {
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		fatal(fmt.Errorf("SIGTERM: %w", err))
	}
	code, err := awaitExit(d.cmd, 30*time.Second)
	if err != nil {
		fatal(err)
	}
	if code != 0 {
		fatal(fmt.Errorf("idsevald exited %d after SIGTERM; stderr tail:\n%s", code, d.stderr.String()))
	}
	for _, line := range strings.Split(d.stderr.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "idsevald: ledger "); ok {
			return rest
		}
	}
	fatal(fmt.Errorf("no ledger line in drain output:\n%s", d.stderr.String()))
	return ""
}

// stderrSink accumulates a daemon's stderr and watches the byte stream
// for the listening line as it arrives.
type stderrSink struct {
	mu      sync.Mutex
	buf     bytes.Buffer
	scanned int // buf prefix already scanned for the listen line
	found   chan string
	once    sync.Once
}

func newStderrSink() *stderrSink {
	return &stderrSink{found: make(chan string, 1)}
}

// Write implements io.Writer for cmd.Stderr.
func (s *stderrSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf.Write(p)
	// Scan any newly completed lines for the listen address.
	data := s.buf.Bytes()
	for {
		nl := bytes.IndexByte(data[s.scanned:], '\n')
		if nl < 0 {
			break
		}
		line := string(data[s.scanned : s.scanned+nl])
		s.scanned += nl + 1
		if addr, ok := strings.CutPrefix(line, listenPrefix); ok {
			s.once.Do(func() { s.found <- addr })
		}
	}
	return len(p), nil
}

func (s *stderrSink) awaitListenAddr(timeout time.Duration) (string, error) {
	select {
	case addr := <-s.found:
		return addr, nil
	case <-time.After(timeout):
		return "", fmt.Errorf("no %q line within %v; stderr so far:\n%s",
			listenPrefix, timeout, s.String())
	}
}

func (s *stderrSink) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.String()
}

// awaitExit waits for the process with a deadline, returning its exit
// code.
func awaitExit(cmd *exec.Cmd, timeout time.Duration) (int, error) {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(timeout):
		return -1, fmt.Errorf("idsevald did not exit within %v", timeout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "chaossmoke:", err)
	os.Exit(1)
}
