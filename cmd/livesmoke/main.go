// Command livesmoke is the CI smoke test for the live observability
// plane. It exercises the campaign binary end to end the way an
// operator would: plan a small campaign, start `campaign run -listen
// 127.0.0.1:0`, find the bound address from the stderr "listening on"
// line, scrape /healthz, /metrics, and /progress while experiments are
// running, interrupt the run with SIGINT, and require a graceful exit
// plus a clean resume to completion afterwards. Pure Go — no curl or
// shell plumbing, so the smoke runs anywhere the toolchain does.
//
// Usage:
//
//	livesmoke -bin path/to/campaign -dir /tmp/smoke-campaign
//
// The directory is removed and recreated; the binary is built by the
// Makefile's live-smoke target.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"time"
)

// listenPrefix is the exact stderr line format httpexport emits; the
// bound address (needed because -listen uses port 0) follows it.
const listenPrefix = "observability: listening on http://"

func main() {
	bin := flag.String("bin", "", "campaign binary to drive (required)")
	dir := flag.String("dir", "", "campaign directory (required; removed and recreated)")
	flag.Parse()
	if *bin == "" || *dir == "" {
		fatal(fmt.Errorf("-bin and -dir are required"))
	}

	if err := os.RemoveAll(*dir); err != nil {
		fatal(err)
	}
	// Enough experiments that the single-worker run stays alive for a
	// couple of seconds — the window the mid-run scrapes and the SIGINT
	// need. The scrapes themselves take milliseconds.
	if err := runStep(*bin, "plan", "-dir", *dir, "-quick", "-seed", "11",
		"-evals", "-sweep-points", "4"); err != nil {
		fatal(err)
	}

	cmd := exec.Command(*bin, "run", "-dir", *dir, "-workers", "1", "-listen", "127.0.0.1:0")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	stderr, err := cmd.StderrPipe()
	if err != nil {
		fatal(err)
	}
	if err := cmd.Start(); err != nil {
		fatal(err)
	}
	// If any later step fails, don't leave the campaign running.
	defer cmd.Process.Kill()

	addr, drained, err := awaitListenLine(stderr, 30*time.Second)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("livesmoke: campaign serving on %s\n", addr)

	base := "http://" + addr
	if err := scrape(base); err != nil {
		fatal(err)
	}

	if err := cmd.Process.Signal(syscall.SIGINT); err != nil {
		fatal(fmt.Errorf("SIGINT: %w", err))
	}
	code, err := awaitExit(cmd, 30*time.Second)
	if err != nil {
		fatal(err)
	}
	<-drained
	// Interrupted-and-incomplete exits 1 (with the resume banner); 0
	// means the run won the race and finished before the signal landed.
	// Anything else — or a timeout above — is a shutdown bug.
	if code != 0 && code != 1 {
		fatal(fmt.Errorf("campaign run exited %d after SIGINT; stdout:\n%s", code, stdout.String()))
	}
	fmt.Printf("livesmoke: SIGINT honored, exit code %d\n", code)

	// The journal must have survived the interrupt: resume runs the
	// remainder and status reports every experiment committed.
	if err := runStep(*bin, "resume", "-dir", *dir); err != nil {
		fatal(fmt.Errorf("resume after SIGINT: %w", err))
	}
	out, err := exec.Command(*bin, "status", "-dir", *dir).CombinedOutput()
	if err != nil {
		fatal(fmt.Errorf("status: %w\n%s", err, out))
	}
	if !strings.Contains(string(out), "20/20 experiments committed") {
		fatal(fmt.Errorf("campaign incomplete after resume:\n%s", out))
	}
	fmt.Println("livesmoke: ok — scraped live endpoints, graceful SIGINT, clean resume")
}

// scrape checks the three live endpoints mid-run.
func scrape(base string) error {
	body, err := get(base + "/healthz")
	if err != nil {
		return err
	}
	if !strings.Contains(body, "ok") {
		return fmt.Errorf("/healthz: unexpected body %q", body)
	}
	body, err = get(base + "/metrics")
	if err != nil {
		return err
	}
	if !strings.Contains(body, "campaign_") {
		return fmt.Errorf("/metrics: no campaign_ family in:\n%s", body)
	}
	body, err = get(base + "/progress")
	if err != nil {
		return err
	}
	var prog struct {
		Name    string `json:"name"`
		Planned int    `json:"planned"`
		Done    bool   `json:"done"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		return fmt.Errorf("/progress: not JSON: %v in %q", err, body)
	}
	if prog.Planned != 20 {
		return fmt.Errorf("/progress: planned %d, want 20 (%s)", prog.Planned, body)
	}
	fmt.Printf("livesmoke: /healthz, /metrics, /progress ok (campaign %q, %d planned)\n",
		prog.Name, prog.Planned)
	return nil
}

// awaitListenLine scans stderr for the listening line and returns the
// bound address. The remainder of the stream keeps draining in the
// background (a full pipe would block the campaign); the returned
// channel closes when the child closes its stderr.
func awaitListenLine(r io.Reader, timeout time.Duration) (string, <-chan struct{}, error) {
	type found struct {
		addr string
		err  error
	}
	drained := make(chan struct{})
	ch := make(chan found, 1)
	var once sync.Once
	go func() {
		defer close(drained)
		sc := bufio.NewScanner(r)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, listenPrefix) {
				once.Do(func() { ch <- found{addr: strings.TrimPrefix(line, listenPrefix)} })
			}
		}
		once.Do(func() { ch <- found{err: fmt.Errorf("campaign exited without a %q line", listenPrefix)} })
	}()
	select {
	case f := <-ch:
		return f.addr, drained, f.err
	case <-time.After(timeout):
		return "", drained, fmt.Errorf("no %q line within %v", listenPrefix, timeout)
	}
}

// awaitExit waits for the process with a deadline, returning its exit
// code.
func awaitExit(cmd *exec.Cmd, timeout time.Duration) (int, error) {
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err == nil {
			return 0, nil
		}
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode(), nil
		}
		return -1, err
	case <-time.After(timeout):
		return -1, fmt.Errorf("campaign did not exit within %v of SIGINT", timeout)
	}
}

// get fetches a URL with a short timeout and requires HTTP 200.
func get(url string) (string, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("GET %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	return string(body), nil
}

// runStep runs a campaign subcommand to completion, echoing its output
// on failure.
func runStep(bin string, args ...string) error {
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		return fmt.Errorf("%s %s: %w\n%s", bin, strings.Join(args, " "), err, out)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "livesmoke:", err)
	os.Exit(1)
}
