// Command idseval runs the full metrics-based evaluation of the product
// field and prints the scorecards, comparison matrices, and weighted
// rankings — the top-level reproduction of the paper's prototype
// evaluation of three commercial IDS products (plus the AAFID-class
// research system).
//
// Usage:
//
//	idseval [-quick] [-seed N] [-workers N] [-class logistical|architectural|performance|all]
//	        [-posture realtime|distributed|uniform] [-product NAME] [-tables] [-timeout 10m]
//	        [-telemetry] [-telemetry-jsonl F] [-listen ADDR] [-trace-out F]
//	idseval -shards N [-scale-segments N] [-scale-hosts N] [-scale-duration D] [-product NAME]
//
// With -shards the tool runs the at-scale sharded simulation instead of
// the scorecard matrix: one large segmented topology partitioned across
// conservative parallel event domains, N executor goroutines. Stdout is
// byte-identical for every -shards value at the same seed (the report
// carries only deterministic fields); wall-clock throughput goes to
// stderr.
//
// Evaluations fan out across every core by default; -workers 1 forces
// the serial path. Either way the output is bit-identical for a given
// seed — every experiment owns its simulation and derives its RNG
// streams from the seed alone. Ctrl-C (or -timeout expiry) drains
// in-flight experiments at a clean event boundary and prints the
// completed product reports with an INTERRUPTED banner.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/requirements"
)

func main() {
	quick := flag.Bool("quick", false, "shrink experiment durations (smoke-test scale)")
	seed := flag.Int64("seed", 11, "simulation seed")
	workers := flag.Int("workers", 0, "worker-pool bound for parallel evaluation (0 = all cores, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the evaluation after this wall-clock duration (0 = none)")
	class := flag.String("class", "all", "matrix class to print: logistical, architectural, performance, all")
	posture := flag.String("posture", "realtime", "weighting posture: realtime, distributed, uniform")
	product := flag.String("product", "", "evaluate only the named product")
	tables := flag.Bool("tables", false, "print the Table 1-3 metric definitions and exit")
	shards := flag.Int("shards", 0, "run the sharded at-scale simulation with this many executor goroutines (0 = classic scorecard evaluation)")
	scaleSegments := flag.Int("scale-segments", 8, "sharded run: leaf-switch segments (one event domain each)")
	scaleHosts := flag.Int("scale-hosts", 40, "sharded run: hosts per segment")
	scaleDuration := flag.Duration("scale-duration", 0, "sharded run: scored detection phase length (default 5s)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	o := cli.AddObsFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	defer o.Close()

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	reg := core.StandardRegistry()
	out := os.Stdout

	if *tables {
		for _, c := range core.Classes {
			if err := report.MetricTable(out, reg, c, false); err != nil {
				fatal(err)
			}
			fmt.Fprintln(out)
		}
		if err := stopProf(); err != nil {
			fatal(err)
		}
		return
	}

	field := products.All()
	if *product != "" {
		spec, ok := products.Find(*product)
		if !ok {
			fatal(fmt.Errorf("unknown product %q", *product))
		}
		field = []products.Spec{spec}
	}

	if *shards > 0 {
		if err := runShardedScale(ctx, out, field, o, shardedOpts{
			seed: *seed, shards: *shards, segments: *scaleSegments,
			hosts: *scaleHosts, duration: *scaleDuration,
		}); err != nil {
			fatal(err)
		}
		if err := stopProf(); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Fprintf(out, "Evaluating %d product(s) against the %d-metric standard (seed %d, quick=%v)\n\n",
		len(field), reg.Len(), *seed, *quick)

	// A live /metrics endpoint accumulates products as their evaluations
	// complete: the merged-so-far provider is installed before the field
	// fans out and snapshots arrive from worker goroutines.
	collect := o.Collecting()
	live := newLiveSnapshots()
	o.SetSnapshot(live.merged)
	if err := o.Serve(ctx); err != nil {
		fatal(err)
	}
	evs, err := eval.EvaluateAll(ctx, field, reg, eval.Options{
		Seed: *seed, Quick: *quick, Workers: *workers, Telemetry: collect,
		OnSnapshot: func(spec products.Spec, snap *obs.Snapshot) {
			live.add(spec.Name+".", snap)
		},
	})
	if err != nil {
		if !cli.Interrupted(err) || evs == nil {
			fatal(err)
		}
		// Print every product that finished before the interrupt, then
		// the banner; rankings over a partial field would mislead.
		done := 0
		for _, ev := range evs {
			if ev == nil {
				continue
			}
			if perr := report.EvaluationReport(out, ev); perr != nil {
				fatal(perr)
			}
			done++
		}
		cli.Banner(out, done, len(field))
		os.Exit(1)
	}

	cards := make([]*core.Scorecard, len(evs))
	for i, ev := range evs {
		if err := report.EvaluationReport(out, ev); err != nil {
			fatal(err)
		}
		cards[i] = ev.Card
	}

	classes := core.Classes
	switch *class {
	case "logistical":
		classes = []core.Class{core.Logistical}
	case "architectural":
		classes = []core.Class{core.Architectural}
	case "performance":
		classes = []core.Class{core.Performance}
	case "all":
	default:
		fatal(fmt.Errorf("unknown class %q", *class))
	}
	for _, c := range classes {
		fmt.Fprintf(out, "--- %s score matrix ---\n", c)
		if err := report.ScoreMatrix(out, reg, c, cards, true); err != nil {
			fatal(err)
		}
		fmt.Fprintln(out)
	}

	var w core.Weights
	var postureSet *requirements.Set
	switch *posture {
	case "uniform":
		w = core.Uniform(reg)
	case "realtime":
		postureSet = requirements.RealTimeEmphasis()
	case "distributed":
		postureSet = requirements.DistributedEmphasis()
	default:
		fatal(fmt.Errorf("unknown posture %q", *posture))
	}
	if postureSet != nil {
		w, err = requirements.DeriveWeights(postureSet, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "Requirements (%s posture):\n%s\n", *posture, postureSet.Describe())
	}

	ranked, err := core.Rank(cards, w)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(out, "--- weighted ranking (%s posture, Figure 5) ---\n", *posture)
	if err := report.Ranking(out, ranked); err != nil {
		fatal(err)
	}

	// The paper concedes weighting "will always be somewhat subjective";
	// quantify how much that subjectivity could change the decision.
	if len(cards) > 1 {
		stab, err := core.RankStability(cards, w, 0.2, 400, rand.New(rand.NewSource(*seed)))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(out, "\nranking stability under ±20%% weight perturbation (%d trials):\n", stab.Trials)
		for _, r := range ranked {
			fmt.Fprintf(out, "  %-14s wins %5.1f%%  mean rank %.2f\n",
				r.System, stab.WinShare[r.System]*100, stab.MeanRank[r.System])
		}
		if stab.Stable(0.9) {
			fmt.Fprintf(out, "the selection of %s is robust to weighting subjectivity.\n", stab.BaseWinner)
		} else {
			fmt.Fprintf(out, "CAUTION: %s won only %.0f%% of perturbed rankings — refine the requirements before procuring.\n",
				stab.BaseWinner, stab.WinShare[stab.BaseWinner]*100)
		}
	}

	// Telemetry export goes to stderr / files only: stdout above is
	// byte-identical whether collection was on or off.
	if collect {
		if o.Telemetry {
			for _, ev := range evs {
				if err := report.TelemetrySummary(os.Stderr, ev.Telemetry); err != nil {
					fatal(err)
				}
				fmt.Fprintln(os.Stderr)
			}
		}
		if err := o.Finish(nil); err != nil {
			fatal(err)
		}
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// liveSnapshots is the merged-so-far snapshot provider behind /metrics:
// registries register as their runs start (live gauges) and finished
// products contribute frozen prefixed snapshots. Safe for concurrent
// use from evaluation workers and HTTP scrapes.
type liveSnapshots struct {
	mu    sync.Mutex
	snaps []*obs.Snapshot
	regs  []liveReg
}

type liveReg struct {
	prefix string
	reg    *obs.Registry
}

func newLiveSnapshots() *liveSnapshots { return &liveSnapshots{} }

// add contributes a frozen snapshot (a completed product's telemetry).
func (l *liveSnapshots) add(prefix string, snap *obs.Snapshot) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.snaps = append(l.snaps, snap.Prefixed(prefix))
}

// watch contributes a registry that is still being written; every
// merged() call re-snapshots it, so scrapes see gauges move mid-run.
func (l *liveSnapshots) watch(prefix string, reg *obs.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.regs = append(l.regs, liveReg{prefix, reg})
}

func (l *liveSnapshots) merged() *obs.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	m := &obs.Snapshot{}
	for _, s := range l.snaps {
		m.Merge(s)
	}
	for _, lr := range l.regs {
		m.Merge(lr.reg.Snapshot().Prefixed(lr.prefix))
	}
	return m
}

// shardedOpts bundles the -shards path's flag values.
type shardedOpts struct {
	seed            int64
	shards          int
	segments, hosts int
	duration        time.Duration
}

// runShardedScale drives the at-scale sharded simulation for each
// product in the field. Stdout carries only the deterministic report —
// byte-identical across -shards values and across the obs flags — while
// wall-clock throughput, per-domain attribution, and telemetry go to
// stderr. Per-product registries share one flight recorder so -trace-out
// carries the whole field on a single timeline.
func runShardedScale(ctx context.Context, out *os.File, field []products.Spec, obsFlags *cli.ObsFlags, o shardedOpts) error {
	fmt.Fprintf(out, "Sharded at-scale evaluation: %d product(s), %d segments x %d hosts (seed %d)\n\n",
		len(field), o.segments, o.hosts, o.seed)
	collect := obsFlags.Collecting()
	live := newLiveSnapshots()
	obsFlags.SetSnapshot(live.merged)
	if err := obsFlags.Serve(ctx); err != nil {
		return err
	}
	for _, spec := range field {
		cfg := eval.ShardedScaleConfig{
			Seed:            o.seed,
			Segments:        o.segments,
			HostsPerSegment: o.hosts,
			Shards:          o.shards,
			Duration:        o.duration,
		}
		if collect {
			cfg.Obs = obs.NewRegistry()
			cfg.Obs.SetFlight(obsFlags.Registry().Flight())
			live.watch(spec.Name+".", cfg.Obs)
		}
		res, err := eval.RunShardedScale(ctx, spec, cfg)
		if err != nil {
			return err
		}
		if err := report.ShardedScaleReport(out, res); err != nil {
			return err
		}
		fmt.Fprintln(out)
		fmt.Fprintf(os.Stderr, "%s: %d events in %.2fs wall = %.0f events/sec (%d shards)\n",
			spec.Name, res.Events, res.WallSeconds, res.EventsPerSec, o.shards)
		if err := report.ShardedScaleAttribution(os.Stderr, res); err != nil {
			return err
		}
	}
	return obsFlags.Finish(nil)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "idseval:", err)
	os.Exit(1)
}
