// Command crashtorture is the storage-fault matrix for the harness's
// durability claims. It proves — not presumes — that every commit
// point in the campaign runner and the idsevald stream protocol
// recovers correctly under a hostile disk.
//
// For each scenario family (campaign run, idsevald ingest, idsevald
// shed), the tool first runs one clean cycle against a recording
// fault filesystem to enumerate the exact operation trace — every
// create, write, fsync, rename, truncate, remove, and directory sync
// the workload performs. It then generates one fault schedule per
// (operation × fault class): ENOSPC/EIO errors, short writes, lying
// fsyncs (acked but not durable, exposed by a later power cut),
// crash-stop at the operation, crash with a torn tail mid-write, and
// crash after a rename or remove applied. Each schedule replays the
// workload under injection, then recovers on the real filesystem and
// checks the system invariants:
//
//   - campaign: resume re-runs exactly the missing experiments and the
//     final report is byte-identical to an uninterrupted run; every
//     result file matches the clean run byte for byte.
//   - idsevald ingest: the ledger balances (submitted == delivered +
//     rejected + duplicate + pending + Σshed), Hello.next equals the
//     durable resume point, the resumed upload completes, and the
//     reassembled spool is byte-identical to the original trace.
//   - idsevald shed: a crash anywhere inside the shed sequence leaves
//     the stream either tombstoned with its chunks accounted or fully
//     intact and resumable — never silently emptied.
//   - everywhere: no torn file at a final path (every *.json parses).
//
// Schedules are deterministic: a failure's schedule label replays it
// exactly, which is how found bugs get pinned as regression tests.
//
// Usage:
//
//	crashtorture [-family all|campaign|ingest|shed] [-max N] [-v] [-dir D]
//
// The whole matrix runs in-process in well under a minute; `make
// crashmatrix` wires it into CI.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/attack"
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fsio"
	"repro/internal/fsio/faultfs"
	"repro/internal/packet"
	"repro/internal/report"
	"repro/internal/serve"
	"repro/internal/simtime"
	"repro/internal/trace"
	"repro/internal/traffic"
)

var (
	flagFamily = flag.String("family", "all", "scenario family: all, campaign, ingest, or shed")
	flagMax    = flag.Int("max", 0, "cap schedules per family (0 = full matrix)")
	flagV      = flag.Bool("v", false, "log every schedule, not just failures")
	flagDir    = flag.String("dir", "", "scratch root (default: a fresh temp dir, removed on exit)")
)

func main() {
	flag.Parse()
	root := *flagDir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "crashtorture-*")
		if err != nil {
			fatal("%v", err)
		}
		defer os.RemoveAll(root)
	} else {
		os.RemoveAll(root)
		if err := os.MkdirAll(root, 0o755); err != nil {
			fatal("%v", err)
		}
	}
	// The matrix injects hundreds of deliberate directory-sync and
	// append failures; keep their once-per-directory warnings out of
	// the CI log.
	prev := fsio.SetWarnLog(io.Discard)
	defer fsio.SetWarnLog(prev)

	start := time.Now()
	total, failed := 0, 0
	for _, fam := range families() {
		if *flagFamily != "all" && *flagFamily != fam.name {
			continue
		}
		t, f := runFamily(root, fam)
		total += t
		failed += f
	}
	if total == 0 {
		fatal("no families matched %q", *flagFamily)
	}
	fmt.Printf("crashtorture: %d schedules, %d failed (%v)\n", total, failed, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashtorture: "+format+"\n", args...)
	os.Exit(1)
}

// family is one workload shape: run drives the writes under an
// injecting filesystem; verify recovers on the real filesystem and
// checks every invariant. lying tells verify the schedule contained a
// lying fsync, which legitimately loses acked-but-not-durable state.
type family struct {
	name string
	// prepare runs once before the probe; its result is passed to every
	// cycle (the golden reference).
	prepare func(root string) (golden any, err error)
	run     func(dir string, fs fsio.FS, golden any) error
	verify  func(dir string, golden any, lying bool) error
}

func families() []family {
	return []family{
		{name: "campaign", prepare: prepareCampaign, run: runCampaign, verify: verifyCampaign},
		{name: "ingest", prepare: prepareIngest, run: runIngest, verify: verifyIngest},
		{name: "shed", prepare: prepareShed, run: runShed, verify: verifyShed},
	}
}

// schedule is one deterministic fault plan.
type schedule struct {
	label string
	rules []faultfs.Rule
	// crashAtEnd cuts the power after the workload completes — the only
	// way to expose a lying fsync.
	crashAtEnd bool
	lying      bool
}

// enumerate turns a probe trace into the fault matrix: one schedule
// per operation occurrence per applicable fault class.
func enumerate(probe []faultfs.Record) []schedule {
	occ := map[faultfs.Op]int{}
	var out []schedule
	add := func(class string, op faultfs.Op, n int, r faultfs.Rule) {
		r.Op, r.N = op, n
		out = append(out, schedule{
			label:      fmt.Sprintf("%s#%d:%s", op, n, class),
			rules:      []faultfs.Rule{r},
			crashAtEnd: r.SyncLie,
			lying:      r.SyncLie,
		})
	}
	for _, rec := range probe {
		occ[rec.Op]++
		n := occ[rec.Op]
		switch rec.Op {
		case faultfs.OpWrite:
			add("enospc", rec.Op, n, faultfs.Rule{Err: syscall.ENOSPC})
			add("short", rec.Op, n, faultfs.Rule{ShortWrite: true})
			add("crash-torn", rec.Op, n, faultfs.Rule{Crash: true, Partial: -1})
		case faultfs.OpSync:
			add("eio", rec.Op, n, faultfs.Rule{Err: syscall.EIO})
			add("lie", rec.Op, n, faultfs.Rule{SyncLie: true})
			add("crash", rec.Op, n, faultfs.Rule{Crash: true})
		case faultfs.OpRename:
			add("enospc", rec.Op, n, faultfs.Rule{Err: syscall.ENOSPC})
			add("crash-before", rec.Op, n, faultfs.Rule{Crash: true})
			add("crash-after", rec.Op, n, faultfs.Rule{Crash: true, After: true})
		case faultfs.OpRemove:
			add("crash-before", rec.Op, n, faultfs.Rule{Crash: true})
			add("crash-after", rec.Op, n, faultfs.Rule{Crash: true, After: true})
		case faultfs.OpCreate, faultfs.OpOpenAppend:
			add("enospc", rec.Op, n, faultfs.Rule{Err: syscall.ENOSPC})
			add("crash", rec.Op, n, faultfs.Rule{Crash: true})
		case faultfs.OpTruncate, faultfs.OpSyncDir:
			add("eio", rec.Op, n, faultfs.Rule{Err: syscall.EIO})
			add("crash", rec.Op, n, faultfs.Rule{Crash: true})
		}
	}
	return out
}

// runFamily probes the clean op trace, then runs the whole matrix.
func runFamily(root string, fam family) (total, failed int) {
	golden, err := fam.prepare(root)
	if err != nil {
		fatal("%s: prepare: %v", fam.name, err)
	}

	probeDir := filepath.Join(root, fam.name, "probe")
	probeFS := faultfs.New()
	if err := os.MkdirAll(probeDir, 0o755); err != nil {
		fatal("%v", err)
	}
	if err := fam.run(probeDir, probeFS, golden); err != nil {
		fatal("%s: clean probe cycle failed: %v", fam.name, err)
	}
	if err := fam.verify(probeDir, golden, false); err != nil {
		fatal("%s: clean probe cycle fails its own invariants: %v", fam.name, err)
	}
	scheds := enumerate(probeFS.Trace())
	if *flagMax > 0 && len(scheds) > *flagMax {
		fmt.Printf("crashtorture: %s: capping matrix at %d of %d schedules (-max)\n", fam.name, *flagMax, len(scheds))
		scheds = scheds[:*flagMax]
	}

	for i, sc := range scheds {
		dir := filepath.Join(root, fam.name, fmt.Sprintf("s%04d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal("%v", err)
		}
		ffs := faultfs.New(sc.rules...)
		// The workload is expected to fail under many schedules; only
		// recovery's verdict matters.
		runErr := fam.run(dir, ffs, golden)
		if sc.crashAtEnd {
			ffs.CrashNow()
		}
		if verr := fam.verify(dir, golden, sc.lying); verr != nil {
			failed++
			fmt.Printf("FAIL %s/%s: %v (workload err: %v)\n", fam.name, sc.label, verr, runErr)
		} else if *flagV {
			fmt.Printf("ok   %s/%s (injected=%d)\n", fam.name, sc.label, ffs.Injected())
		}
		os.RemoveAll(dir) // keep the scratch root small across ~hundreds of cycles
	}
	fmt.Printf("crashtorture: %s: %d schedules\n", fam.name, len(scheds))
	return len(scheds), failed
}

// checkFinalFiles walks dir and fails on any torn final-path artifact:
// a *.json or *.jsonl file that does not parse, or a stray atomic-write
// temp file.
func checkFinalFiles(dir string) error {
	return filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		name := filepath.Base(path)
		if strings.Contains(name, ".tmp-") {
			return fmt.Errorf("stray atomic-write temp file %s", path)
		}
		switch {
		case strings.HasSuffix(name, ".json"):
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			if !json.Valid(b) {
				return fmt.Errorf("torn JSON at final path %s", path)
			}
		case strings.HasSuffix(name, ".jsonl"):
			b, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			for ln, line := range bytes.Split(b, []byte("\n")) {
				if len(bytes.TrimSpace(line)) == 0 {
					continue
				}
				if !json.Valid(line) {
					return fmt.Errorf("torn journal line %d at final path %s", ln+1, path)
				}
			}
		}
		return nil
	})
}

// ---------------------------------------------------------------------
// Family: campaign
// ---------------------------------------------------------------------

// campaignGolden is the reference output of an uninterrupted campaign.
type campaignGolden struct {
	report  []byte
	results map[string][]byte
}

func torSpec() *campaign.Spec {
	return &campaign.Spec{
		Name: "torture", Seed: 7,
		Products:    []string{"TrueSecure", "StreamHunter"},
		SweepPoints: 3,
	}
}

// synthExec makes every experiment instant and deterministic: the
// result is a pure function of the experiment, so the commit/journal
// discipline is exercised at full fidelity while the matrix stays fast.
func synthExec(_ context.Context, ex campaign.Experiment) (*campaign.Result, error) {
	return &campaign.Result{
		ID: ex.ID, Kind: ex.Kind, Product: ex.Product,
		Point: &campaign.PointResult{
			Index: ex.Index, Points: ex.Points,
			Sensitivity: 0.1 * float64(ex.Index+1),
			TypeI:       0.30 - 0.05*float64(ex.Index),
			TypeII:      0.10 + 0.05*float64(ex.Index),
		},
	}, nil
}

func campaignCycle(dir string, fs fsio.FS) error {
	spec := torSpec()
	if err := campaign.SavePlanFS(fs, dir, spec); err != nil {
		return err
	}
	r := &campaign.Runner{
		Dir: dir, Spec: spec, FS: fs, Workers: 2,
		MaxAttempts: 1, Backoff: time.Millisecond,
		Exec: synthExec,
	}
	_, err := r.Run(context.Background())
	return err
}

func renderReport(dir string) ([]byte, error) {
	st, err := campaign.Load(dir)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.CampaignReport(&buf, st, core.StandardRegistry()); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func prepareCampaign(root string) (any, error) {
	dir := filepath.Join(root, "campaign", "golden")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := campaignCycle(dir, fsio.OS); err != nil {
		return nil, err
	}
	rep, err := renderReport(dir)
	if err != nil {
		return nil, err
	}
	g := &campaignGolden{report: rep, results: map[string][]byte{}}
	ents, err := os.ReadDir(filepath.Join(dir, "results"))
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, "results", e.Name()))
		if err != nil {
			return nil, err
		}
		g.results[e.Name()] = b
	}
	return g, nil
}

func runCampaign(dir string, fs fsio.FS, _ any) error { return campaignCycle(dir, fs) }

func verifyCampaign(dir string, golden any, _ bool) error {
	g := golden.(*campaignGolden)

	// How much work did the crash durably commit? The resumed run must
	// skip exactly that and re-run exactly the rest.
	committed := 0
	if entries, _, err := campaign.ReplayJournal(dir); err == nil {
		for id, e := range entries {
			if e.Status != campaign.StatusDone {
				continue
			}
			if _, lerr := campaign.LoadResult(dir, id); lerr == nil {
				committed++
			}
		}
	} // an unreadable journal is itself repaired by the resumed run below

	spec := torSpec()
	planned, err := spec.Plan()
	if err != nil {
		return err
	}
	r := &campaign.Runner{
		Dir: dir, Spec: spec, Workers: 2,
		MaxAttempts: 1, Backoff: time.Millisecond,
		Exec: synthExec,
	}
	if err := campaign.SavePlan(dir, spec); err != nil {
		return fmt.Errorf("re-saving plan: %w", err)
	}
	out, err := r.Run(context.Background())
	if err != nil {
		return fmt.Errorf("resume run: %w", err)
	}
	if out.Skipped != committed || out.Completed != len(planned)-committed {
		return fmt.Errorf("resume did not re-run exactly the missing work: %d committed before crash, resumed skipped=%d completed=%d of %d",
			committed, out.Skipped, out.Completed, len(planned))
	}

	rep, err := renderReport(dir)
	if err != nil {
		return fmt.Errorf("rendering resumed report: %w", err)
	}
	if !bytes.Equal(rep, g.report) {
		return fmt.Errorf("resumed report differs from uninterrupted run (%d vs %d bytes)", len(rep), len(g.report))
	}
	for name, want := range g.results {
		got, rerr := os.ReadFile(filepath.Join(dir, "results", name))
		if rerr != nil {
			return fmt.Errorf("result %s: %w", name, rerr)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("result %s differs from uninterrupted run", name)
		}
	}
	return checkFinalFiles(dir)
}

// ---------------------------------------------------------------------
// Family: idsevald ingest
// ---------------------------------------------------------------------

// ingestGolden carries the trace being uploaded, pre-chunked.
type ingestGolden struct {
	payload []byte
	chunks  [][]byte
}

const ingestStream = "tor"

func ingestMeta() serve.StreamMeta {
	return serve.StreamMeta{
		Name: ingestStream, Seed: 7, Quick: true,
		Products: []string{"TrueSecure"}, Sensitivity: 0.6,
	}
}

// buildTrace renders a small labeled IDT2 trace entirely in-process —
// the same recipe the serve tests use.
func buildTrace(seed int64) ([]byte, error) {
	sim := simtime.New(seed)
	rec := trace.NewRecorder(sim, "ecommerce-edge")
	seq := &packet.SeqCounter{}
	eps := traffic.Endpoints{
		External: []packet.Addr{packet.IPv4(203, 0, 1, 1), packet.IPv4(203, 0, 1, 2)},
		Cluster: []packet.Addr{
			packet.IPv4(10, 1, 1, 1), packet.IPv4(10, 1, 1, 2), packet.IPv4(10, 1, 1, 3),
		},
	}
	gen, err := traffic.NewGenerator(sim, traffic.EcommerceEdge(), eps, seq, rec.Emit)
	if err != nil {
		return nil, err
	}
	gen.Start(40)
	ctx := &attack.Context{Sim: sim, Rng: sim.Stream("attack"), Seq: seq, Eps: eps, Emit: rec.Emit, Gen: gen}
	camp := attack.NewCampaign(ctx)
	if err := camp.SpreadAcross(2*time.Second, 8*time.Second, []attack.Scenario{
		attack.Exploit{Count: 2}, attack.BruteForce{Attempts: 10},
	}); err != nil {
		return nil, err
	}
	sim.RunUntil(10 * time.Second)
	gen.Stop()
	sim.Run()
	rec.SetIncidents(camp.Incidents())
	var buf bytes.Buffer
	if err := rec.Trace().WriteStream(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func chunked(payload []byte, n int) [][]byte {
	size := (len(payload) + n - 1) / n
	var out [][]byte
	for off := 0; off < len(payload); off += size {
		end := off + size
		if end > len(payload) {
			end = len(payload)
		}
		out = append(out, payload[off:end])
	}
	return out
}

func prepareIngest(string) (any, error) {
	payload, err := buildTrace(7)
	if err != nil {
		return nil, err
	}
	return &ingestGolden{payload: payload, chunks: chunked(payload, 3)}, nil
}

func ingestConfig(dir string, fs fsio.FS) serve.Config {
	return serve.Config{
		Dir: dir, FS: fs,
		// No eval workers: the matrix tortures the ingest protocol; the
		// campaign family tortures evaluation separately.
		EvalWorkers: -1,
		RetryAfter:  time.Millisecond,
	}
}

func runIngest(dir string, fs fsio.FS, golden any) error {
	g := golden.(*ingestGolden)
	svc, err := serve.Open(ingestConfig(dir, fs))
	if err != nil {
		return err
	}
	defer svc.Close()
	info, err := svc.Hello(ingestMeta())
	if err != nil {
		return err
	}
	for i := int(info.Next); i < len(g.chunks); i++ {
		if _, err := svc.Accept(ingestStream, uint32(i), g.chunks[i]); err != nil {
			return err
		}
	}
	return svc.Finish(ingestStream, uint64(len(g.chunks)), int64(len(g.payload)))
}

// countAckLines parses an ack journal the way recovery does: complete,
// valid, sequential lines whose bytes are covered by the spool.
func countAckLines(dir string) uint64 {
	spoolSize := int64(0)
	if fi, err := os.Stat(filepath.Join(dir, "trace.idt2")); err == nil {
		spoolSize = fi.Size()
	}
	data, err := os.ReadFile(filepath.Join(dir, "acks.jsonl"))
	if err != nil {
		return 0
	}
	var chunks uint64
	var covered int64
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var e struct {
			Ord uint32 `json:"ord"`
			Len int    `json:"len"`
		}
		if json.Unmarshal(line, &e) != nil || uint64(e.Ord) != chunks || covered+int64(e.Len) > spoolSize {
			break
		}
		chunks++
		covered += int64(e.Len)
	}
	return chunks
}

func verifyIngest(dir string, golden any, lying bool) error {
	g := golden.(*ingestGolden)
	streamDir := filepath.Join(dir, "streams", ingestStream)

	// The durable resume point, read straight off the post-crash disk,
	// before recovery touches anything.
	expected := countAckLines(streamDir)

	svc, err := serve.Open(ingestConfig(dir, nil))
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	defer svc.Close()
	if err := svc.Counts().Check(); err != nil {
		return fmt.Errorf("ledger after recovery: %w", err)
	}

	info, err := svc.Hello(ingestMeta())
	if err != nil {
		return fmt.Errorf("hello after recovery: %w", err)
	}
	switch info.State {
	case serve.StateQueued, serve.StateRunning, serve.StateDone:
		// Finish committed before the fault: all chunks delivered.
		if info.Next != uint32(len(g.chunks)) {
			return fmt.Errorf("delivered stream reports next=%d, want %d", info.Next, len(g.chunks))
		}
	case serve.StateOpen:
		if lying {
			// A lying fsync may have lost acked state at the power cut;
			// the resume point must still match the durable disk.
			if uint64(info.Next) > expected {
				return fmt.Errorf("hello next=%d beyond durable resume point %d", info.Next, expected)
			}
		} else if info.Next != uint32(expected) {
			return fmt.Errorf("hello next=%d, durable ack journal says %d", info.Next, expected)
		}
		// Resume the upload to completion.
		for i := int(info.Next); i < len(g.chunks); i++ {
			if _, err := svc.Accept(ingestStream, uint32(i), g.chunks[i]); err != nil {
				return fmt.Errorf("resumed accept %d: %w", i, err)
			}
		}
		if err := svc.Finish(ingestStream, uint64(len(g.chunks)), int64(len(g.payload))); err != nil {
			return fmt.Errorf("resumed finish: %w", err)
		}
	default:
		return fmt.Errorf("stream in unexpected state %q after recovery", info.State)
	}

	// The reassembled spool must be the original trace, byte for byte.
	spool, err := os.ReadFile(filepath.Join(streamDir, "trace.idt2"))
	if err != nil {
		return fmt.Errorf("reading reassembled spool: %w", err)
	}
	if !bytes.Equal(spool, g.payload) {
		return fmt.Errorf("reassembled spool differs from original (%d vs %d bytes)", len(spool), len(g.payload))
	}
	if err := svc.Counts().Check(); err != nil {
		return fmt.Errorf("ledger after resume: %w", err)
	}
	if lying {
		// A lying fsync defeats write-then-rename atomicity: the rename
		// can land and the power cut then truncates the final path. The
		// system's defense is read-time validation plus heal-on-rewrite,
		// not prevention — so the no-torn-finals sweep does not apply.
		return nil
	}
	return checkFinalFiles(dir)
}

// ---------------------------------------------------------------------
// Family: idsevald shed
// ---------------------------------------------------------------------

// The shed family forces the spool-budget overload path: a victim
// stream uploads and goes quiet, a second stream's accept overflows the
// budget and sheds the victim. The crash matrix then cuts power at
// every point of the tombstone-and-remove sequence.

const (
	shedVictim = "victim"
	shedNoisy  = "noisy"
	shedChunk  = 1000
	shedBudget = 2500
)

func shedMeta(name string) serve.StreamMeta {
	return serve.StreamMeta{Name: name, Seed: 7, Quick: true, Evals: true, Products: []string{"TrueSecure"}}
}

func prepareShed(string) (any, error) { return nil, nil }

func runShed(dir string, fs fsio.FS, _ any) error {
	svc, err := serve.Open(serve.Config{
		Dir: dir, FS: fs, EvalWorkers: -1,
		MaxSpoolBytes: shedBudget, RetryAfter: time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer svc.Close()
	if _, err := svc.Hello(shedMeta(shedVictim)); err != nil {
		return err
	}
	chunk := bytes.Repeat([]byte{0xAB}, shedChunk)
	for i := 0; i < 2; i++ {
		if _, err := svc.Accept(shedVictim, uint32(i), chunk); err != nil {
			return err
		}
	}
	if _, err := svc.Hello(shedMeta(shedNoisy)); err != nil {
		return err
	}
	// 2000 + 1000 > 2500: this accept sheds the idle victim first.
	if _, err := svc.Accept(shedNoisy, 0, chunk); err != nil {
		return err
	}
	return nil
}

func verifyShed(dir string, _ any, lying bool) error {
	victimDir := filepath.Join(dir, "streams", shedVictim)
	noisyDir := filepath.Join(dir, "streams", shedNoisy)
	victimAcked := countAckLines(victimDir)
	noisyAcked := countAckLines(noisyDir)
	tombstoned := fileExists(filepath.Join(victimDir, "shed.json"))

	svc, err := serve.Open(serve.Config{
		Dir: dir, EvalWorkers: -1,
		MaxSpoolBytes: shedBudget, RetryAfter: time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("recovery open: %w", err)
	}
	defer svc.Close()
	if err := svc.Counts().Check(); err != nil {
		return fmt.Errorf("ledger after recovery: %w", err)
	}

	if st, ok := svc.Status(shedVictim); ok {
		switch st.State {
		case serve.StateShed:
			// Tombstoned: the chunks must be accounted and the dead spool
			// cleaned up by recovery.
			if !tombstoned {
				return fmt.Errorf("victim reports shed but no tombstone on disk")
			}
			if fileExists(filepath.Join(victimDir, "trace.idt2")) || fileExists(filepath.Join(victimDir, "acks.jsonl")) {
				return fmt.Errorf("shed victim still holds spool/ack files after recovery")
			}
			if counts := svc.Counts(); counts.Shed[serve.ShedOverload]+counts.Shed[serve.ShedIdle] != st.Chunks {
				return fmt.Errorf("victim shed %d chunks but ledger sheds account %d",
					st.Chunks, counts.Shed[serve.ShedOverload]+counts.Shed[serve.ShedIdle])
			}
		case serve.StateOpen:
			// Not tombstoned: the upload must be fully intact — a crash
			// inside the shed sequence must never silently empty a stream.
			info, herr := svc.Hello(shedMeta(shedVictim))
			if herr != nil {
				return fmt.Errorf("victim hello: %w", herr)
			}
			if lying {
				if info.Next > uint32(victimAcked) {
					return fmt.Errorf("victim next=%d beyond durable %d", info.Next, victimAcked)
				}
			} else if info.Next != uint32(victimAcked) {
				return fmt.Errorf("victim resurrected with next=%d, durable acks say %d — chunks silently lost", info.Next, victimAcked)
			}
		default:
			return fmt.Errorf("victim in unexpected state %q", st.State)
		}
	} else if !lying && (victimAcked > 0 || tombstoned) {
		// Under a lying fsync the victim's meta.json can be torn at the
		// final path, and a meta-less directory is legitimately swept.
		return fmt.Errorf("victim stream vanished despite durable state on disk")
	}

	if st, ok := svc.Status(shedNoisy); ok && st.State == serve.StateOpen {
		info, herr := svc.Hello(shedMeta(shedNoisy))
		if herr != nil {
			return fmt.Errorf("noisy hello: %w", herr)
		}
		if lying {
			if info.Next > uint32(noisyAcked) {
				return fmt.Errorf("noisy next=%d beyond durable %d", info.Next, noisyAcked)
			}
		} else if info.Next != uint32(noisyAcked) {
			return fmt.Errorf("noisy stream next=%d, durable acks say %d", info.Next, noisyAcked)
		}
	}
	if lying {
		return nil // see verifyIngest: torn finals are expected under a lying fsync
	}
	return checkFinalFiles(dir)
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
