// Command replay feeds a canned trace (produced by trafficgen) through a
// product's testbed deployment and prints the Figure-3 accuracy summary —
// the paper's Lesson-2 methodology for observing the false negative
// ratio.
//
// Both trace encodings are accepted and detected by magic: v2 ("IDT2")
// traces stream chunk-by-chunk with a pipelined decoder and O(chunk)
// memory; v1 ("IDTR") traces load fully in memory. Stage timings and the
// decoded-chunk count go to stderr so stdout is byte-identical across
// the two paths for the same records.
//
// Usage:
//
//	replay -trace trace.idtr [-product TrueSecure] [-sensitivity 0.6]
//	       [-train 15] [-seed 11] [-timeout 5m] [-telemetry]
//	       [-telemetry-jsonl F] [-listen ADDR] [-trace-out F]
//
// Ctrl-C (or -timeout expiry) halts the replay at a clean event
// boundary and exits without a result — a partially replayed trace is
// not scoreable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/eval"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "binary trace file (required)")
	productName := flag.String("product", "TrueSecure", "product under test")
	sensitivity := flag.Float64("sensitivity", 0.6, "detection sensitivity in [0,1]")
	trainSecs := flag.Float64("train", 15, "clean-baseline training seconds before replay")
	seed := flag.Int64("seed", 11, "testbed seed")
	timeout := flag.Duration("timeout", 0, "abort the replay after this wall-clock duration (0 = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	o := cli.AddObsFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	defer o.Close()

	if *traceFile == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	spec, ok := products.Find(*productName)
	if !ok {
		fatal(fmt.Errorf("unknown product %q", *productName))
	}
	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}

	f, err := os.Open(*traceFile)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	streaming, err := sniffIDT2(f)
	if err != nil {
		fatal(err)
	}

	// One registry carries the whole run: stage spans (always shown on
	// stderr, as before), plus decoder/pipeline instrumentation exported
	// when the obs flags ask for it. Telemetry never touches stdout.
	reg := o.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	o.SetSnapshot(reg.Snapshot)
	if err := o.Serve(ctx); err != nil {
		fatal(err)
	}
	dur := func(name string) time.Duration {
		d, _ := reg.SpanDur(name)
		return d.Round(time.Millisecond)
	}

	var res *eval.AccuracyResult
	if streaming {
		rd, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		st, ok := rd.Stats()
		if !ok {
			fatal(fmt.Errorf("trace %q has no footer index", *traceFile))
		}
		fmt.Printf("replaying %q: %d packets, %d incidents, %v span (profile %s, seed %d)\n\n",
			*traceFile, st.Packets, len(rd.Incidents()), st.Duration().Round(time.Millisecond),
			rd.Profile(), rd.Seed())
		res, err = eval.RunTraceAccuracyStream(ctx, spec, rd, *sensitivity,
			time.Duration(*trainSecs*float64(time.Second)), *seed, reg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "replay: streamed %d chunks: setup %v, train %v, replay %v, score %v\n",
			rd.ChunksRead(), dur("replay.setup"), dur("replay.train"),
			dur("replay.replay"), dur("replay.score"))
	} else {
		sp := reg.StartSpan("replay.load")
		tr, err := trace.ReadBinary(f)
		if err != nil {
			fatal(err)
		}
		sp.End()
		s := tr.Summarize()
		fmt.Printf("replaying %q: %d packets, %d incidents, %v span (profile %s, seed %d)\n\n",
			*traceFile, s.Packets, s.Incidents, s.Duration.Round(time.Millisecond), tr.Profile, tr.Seed)
		sp = reg.StartSpan("replay.run")
		res, err = eval.RunTraceAccuracy(ctx, spec, tr, *sensitivity,
			time.Duration(*trainSecs*float64(time.Second)), *seed)
		if err != nil {
			fatal(err)
		}
		sp.End()
		fmt.Fprintf(os.Stderr, "replay: in-memory: load %v, run %v\n",
			dur("replay.load"), dur("replay.run"))
	}

	fmt.Printf("%s %s at sensitivity %.2f:\n\n", spec.Name, spec.Version, *sensitivity)
	if err := report.AccuracySummary(os.Stdout, res); err != nil {
		fatal(err)
	}
	fmt.Println("\nsecond-order analysis (intruder intent):")
	if err := report.IntentProfiles(os.Stdout, res.Profiles); err != nil {
		fatal(err)
	}

	if err := o.Finish(nil); err != nil {
		fatal(err)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

// sniffIDT2 reports whether f starts with the IDT2 magic, leaving the
// offset at the start of the file.
func sniffIDT2(f *os.File) (bool, error) {
	var m [4]byte
	if _, err := io.ReadFull(f, m[:]); err != nil {
		return false, fmt.Errorf("reading %s: %w", f.Name(), err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false, err
	}
	return trace.SniffStream(m[:]), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
