// Command replay feeds a canned trace (produced by trafficgen) through a
// product's testbed deployment and prints the Figure-3 accuracy summary —
// the paper's Lesson-2 methodology for observing the false negative
// ratio.
//
// Usage:
//
//	replay -trace trace.idtr [-product TrueSecure] [-sensitivity 0.6]
//	       [-train 15] [-seed 11]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/products"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	traceFile := flag.String("trace", "", "binary trace file (required)")
	productName := flag.String("product", "TrueSecure", "product under test")
	sensitivity := flag.Float64("sensitivity", 0.6, "detection sensitivity in [0,1]")
	trainSecs := flag.Float64("train", 15, "clean-baseline training seconds before replay")
	seed := flag.Int64("seed", 11, "testbed seed")
	flag.Parse()

	if *traceFile == "" {
		fatal(fmt.Errorf("-trace is required"))
	}
	spec, ok := products.Find(*productName)
	if !ok {
		fatal(fmt.Errorf("unknown product %q", *productName))
	}

	f, err := os.Open(*traceFile)
	if err != nil {
		fatal(err)
	}
	tr, err := trace.ReadBinary(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	s := tr.Summarize()
	fmt.Printf("replaying %q: %d packets, %d incidents, %v span (profile %s, seed %d)\n\n",
		*traceFile, s.Packets, s.Incidents, s.Duration.Round(time.Millisecond), tr.Profile, tr.Seed)

	res, err := eval.RunTraceAccuracy(spec, tr, *sensitivity,
		time.Duration(*trainSecs*float64(time.Second)), *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s %s at sensitivity %.2f:\n\n", spec.Name, spec.Version, *sensitivity)
	if err := report.AccuracySummary(os.Stdout, res); err != nil {
		fatal(err)
	}
	fmt.Println("\nsecond-order analysis (intruder intent):")
	if err := report.IntentProfiles(os.Stdout, res.Profiles); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "replay:", err)
	os.Exit(1)
}
