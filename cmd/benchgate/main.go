// Command benchgate compares a fresh hot-path benchmark run against the
// committed baseline (BENCH_hotpath.json) and fails if any throughput
// benchmark regressed beyond the allowed drop. It reads the `go test
// -json` stream format both files are captured in, so the gate needs no
// extra tooling beyond the repository's own benchmark targets.
//
// Benchmarks reporting a throughput unit gate: MB/s (the scan hot path)
// and events/sec (the sharded simulation kernel, captured in
// BENCH_sim.json). ns/op-only benchmarks such as matcher construction
// are reported for the record but do not fail the build — construction
// cost is amortized by the process-wide matcher cache and is inherently
// noisier.
//
// With -gate-ns REGEX, matching ns/op-only benchmarks DO gate: current
// ns/op must stay within baseline*(1+max-ns-grow-pct/100)+ns-slack-ns.
// The absolute slack term exists because the telemetry disabled path
// (BENCH_obs.json) sits at fractions of a nanosecond, where a pure
// percentage bound is all noise. -require-zero-allocs REGEX separately
// asserts that every matching benchmark in the CURRENT run reports
// exactly 0 allocs/op — the contract that lets nil-receiver
// instrumentation live permanently in simulation hot paths.
//
// With -gate-allocs REGEX, matching benchmarks gate on allocs/op growth
// instead of throughput: current allocs/op must stay within
// baseline*(1+max-allocs-grow-pct/100). This is the right dimension for
// syscall-bound paths (idsevald's fsync-per-chunk ingest,
// BENCH_serve.json) whose MB/s swings several-fold with host IO and CPU
// contention while their allocation profile is deterministic — the
// regression the gate is after (an accidental copy or buffer per chunk)
// shows up in allocs/op exactly; throughput is still printed for the
// record.
//
// With -speedup-num/-speedup-den/-min-speedup the gate additionally
// checks parallel scaling: the events/sec ratio between two benchmarks
// in the CURRENT run (e.g. BenchmarkShardedScaleShards4 over
// BenchmarkShardedScaleShards1) must reach the floor. The check arms
// only on hosts with at least 4 CPUs — on smaller machines parallel
// executors cannot beat the serial path, so the ratio is reported and
// skipped rather than failed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchResult struct {
	name      string
	mbps      float64 // 0 if the benchmark reports no MB/s
	eps       float64 // events/sec custom metric; 0 if absent
	nsOp      float64
	allocs    float64 // allocs/op; meaningful only when hasAllocs
	hasAllocs bool    // run captured with -benchmem
}

// cpuSuffix strips the -N GOMAXPROCS suffix so baselines survive a CPU
// count change on the measuring host.
var cpuSuffix = regexp.MustCompile(`-\d+$`)

// parseBenchFile extracts benchmark results from a `go test -json` file.
// test2json emits output in arbitrary chunks (a benchmark's name and its
// measurements usually arrive as separate events), so the output stream
// is reassembled per package before line parsing.
func parseBenchFile(path string) (map[string]benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	streams := make(map[string]*strings.Builder)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action  string
			Package string
			Output  string
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Action != "output" {
			continue
		}
		b := streams[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			streams[ev.Package] = b
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make(map[string]benchResult)
	for _, b := range streams {
		for _, line := range strings.Split(b.String(), "\n") {
			if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) < 4 {
				continue
			}
			r := benchResult{name: cpuSuffix.ReplaceAllString(fields[0], "")}
			for i := 2; i+1 < len(fields); i += 2 {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					continue
				}
				switch fields[i+1] {
				case "ns/op":
					r.nsOp = v
				case "MB/s":
					r.mbps = v
				case "events/sec":
					r.eps = v
				case "allocs/op":
					r.allocs = v
					r.hasAllocs = true
				}
			}
			out[r.name] = r
		}
	}
	return out, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_hotpath.json", "committed baseline benchmark JSON")
	currentPath := flag.String("current", "", "fresh benchmark JSON to gate")
	maxDrop := flag.Float64("max-drop-pct", 15, "maximum allowed throughput (MB/s or events/sec) drop, percent")
	speedupNum := flag.String("speedup-num", "", "benchmark whose events/sec forms the speedup numerator (current run)")
	speedupDen := flag.String("speedup-den", "", "benchmark whose events/sec forms the speedup denominator (current run)")
	minSpeedup := flag.Float64("min-speedup", 2.5, "minimum numerator/denominator events/sec ratio; armed only with >= 4 CPUs")
	gateNs := flag.String("gate-ns", "", "regexp of ns/op-only benchmarks to gate on latency growth")
	maxNsGrow := flag.Float64("max-ns-grow-pct", 100, "maximum allowed ns/op growth for -gate-ns benchmarks, percent")
	nsSlack := flag.Float64("ns-slack-ns", 2, "absolute ns/op slack added to the -gate-ns bound (sub-ns baselines are noise-dominated)")
	zeroAllocs := flag.String("require-zero-allocs", "", "regexp of benchmarks that must report 0 allocs/op in the current run")
	gateAllocs := flag.String("gate-allocs", "", "regexp of benchmarks to gate on allocs/op growth instead of throughput")
	maxAllocsGrow := flag.Float64("max-allocs-grow-pct", 10, "maximum allowed allocs/op growth for -gate-allocs benchmarks, percent")
	flag.Parse()
	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		os.Exit(2)
	}

	base, err := parseBenchFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseBenchFile(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: current: %v\n", err)
		os.Exit(2)
	}
	if len(base) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmarks in baseline %s\n", *baselinePath)
		os.Exit(2)
	}
	var gateNsRe *regexp.Regexp
	if *gateNs != "" {
		gateNsRe, err = regexp.Compile(*gateNs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: -gate-ns: %v\n", err)
			os.Exit(2)
		}
	}
	var gateAllocsRe *regexp.Regexp
	if *gateAllocs != "" {
		gateAllocsRe, err = regexp.Compile(*gateAllocs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: -gate-allocs: %v\n", err)
			os.Exit(2)
		}
	}

	failed := false
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	// Stable report order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		b := base[name]
		c, ok := cur[name]
		if !ok {
			fmt.Printf("MISSING  %-34s baseline %8.2f MB/s, absent from current run\n", name, b.mbps)
			failed = true
			continue
		}
		if gateAllocsRe != nil && gateAllocsRe.MatchString(name) {
			switch {
			case !b.hasAllocs || !c.hasAllocs:
				fmt.Printf("ALLOCS   %-34s allocs/op missing (capture both runs with -benchmem)\n", name)
				failed = true
			default:
				limit := b.allocs * (1 + *maxAllocsGrow/100)
				status := "ok"
				if c.allocs > limit {
					status = "REGRESSED"
					failed = true
				}
				fmt.Printf("%-8s %-34s %12g -> %12g allocs/op (limit %g; %.2f MB/s not gated)\n",
					status, name, b.allocs, c.allocs, limit, c.mbps)
			}
			continue
		}
		baseThru, curThru, unit := b.mbps, c.mbps, "MB/s"
		if b.mbps <= 0 && b.eps > 0 {
			baseThru, curThru, unit = b.eps, c.eps, "events/sec"
		}
		if baseThru <= 0 {
			if gateNsRe != nil && gateNsRe.MatchString(name) && b.nsOp > 0 {
				limit := b.nsOp*(1+*maxNsGrow/100) + *nsSlack
				status := "ok"
				if c.nsOp > limit {
					status = "REGRESSED"
					failed = true
				}
				fmt.Printf("%-8s %-34s %12.2f -> %12.2f ns/op (limit %.2f)\n", status, name, b.nsOp, c.nsOp, limit)
				continue
			}
			fmt.Printf("info     %-34s %10.0f ns/op (baseline %.0f) — not gated\n", name, c.nsOp, b.nsOp)
			continue
		}
		dropPct := (baseThru - curThru) / baseThru * 100
		status := "ok"
		if dropPct > *maxDrop {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-8s %-34s %12.2f -> %12.2f %s (%+.1f%%)\n", status, name, baseThru, curThru, unit, -dropPct)
	}
	if *speedupNum != "" || *speedupDen != "" {
		if !checkSpeedup(cur, *speedupNum, *speedupDen, *minSpeedup) {
			failed = true
		}
	}
	if *zeroAllocs != "" {
		if !checkZeroAllocs(cur, *zeroAllocs) {
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchgate: throughput regressed more than %.0f%% (or benchmarks went missing) vs %s\n", *maxDrop, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchgate: all gated benchmarks within %.0f%% of baseline\n", *maxDrop)
}

// checkZeroAllocs enforces the allocation-free contract: every current
// benchmark matching pattern must have been captured with -benchmem and
// report exactly 0 allocs/op. Matching nothing is itself a failure —
// an empty match would silently disarm the gate when benchmarks are
// renamed.
func checkZeroAllocs(cur map[string]benchResult, pattern string) bool {
	re, err := regexp.Compile(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: -require-zero-allocs: %v\n", err)
		return false
	}
	names := make([]string, 0, len(cur))
	for name := range cur {
		if re.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: -require-zero-allocs %q matched no current benchmarks\n", pattern)
		return false
	}
	ok := true
	for _, name := range names {
		c := cur[name]
		switch {
		case !c.hasAllocs:
			fmt.Printf("ALLOCS   %-34s no allocs/op reported (run with -benchmem)\n", name)
			ok = false
		case c.allocs != 0:
			fmt.Printf("ALLOCS   %-34s %g allocs/op, must be 0\n", name, c.allocs)
			ok = false
		default:
			fmt.Printf("ok       %-34s 0 allocs/op\n", name)
		}
	}
	return ok
}

// checkSpeedup enforces the parallel-scaling floor: num's events/sec in
// the current run must be at least minRatio times den's. On hosts with
// fewer than 4 CPUs the executors cannot physically run in parallel, so
// the ratio is informational and never fails the gate.
func checkSpeedup(cur map[string]benchResult, numName, denName string, minRatio float64) bool {
	if numName == "" || denName == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -speedup-num and -speedup-den must be given together")
		return false
	}
	num, okN := cur[numName]
	den, okD := cur[denName]
	if !okN || !okD || num.eps <= 0 || den.eps <= 0 {
		fmt.Fprintf(os.Stderr, "benchgate: speedup check needs events/sec for both %s and %s in the current run\n", numName, denName)
		return false
	}
	ratio := num.eps / den.eps
	if runtime.NumCPU() < 4 {
		fmt.Printf("speedup  %s / %s = %.2fx — skipped (host has %d CPU(s); check needs >= 4)\n",
			numName, denName, ratio, runtime.NumCPU())
		return true
	}
	if ratio < minRatio {
		fmt.Printf("SLOW     %s / %s = %.2fx, below the %.2fx floor\n", numName, denName, ratio, minRatio)
		return false
	}
	fmt.Printf("speedup  %s / %s = %.2fx (floor %.2fx)\n", numName, denName, ratio, minRatio)
	return true
}
