// Command eersweep reproduces Figure 4: it sweeps a product's detection
// sensitivity, measures the Type I (false positive) and Type II (false
// negative) error rates at each setting, locates the Equal Error Rate
// crossover, and prints the curves as a table, an ASCII plot, and
// optionally CSV.
//
// Usage:
//
//	eersweep [-product NetRecorder] [-points 6] [-seed 7] [-csv out.csv]
//	         [-quick] [-timeout 5m] [-telemetry] [-telemetry-jsonl F]
//	         [-listen ADDR] [-trace-out F]
//
// Ctrl-C (or -timeout expiry) drains in-flight points at a clean event
// boundary and prints the partial curve with an INTERRUPTED banner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/eval"
	"repro/internal/fsio"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/report"
)

func main() {
	productName := flag.String("product", "NetRecorder", "product under test")
	points := flag.Int("points", 6, "sensitivity settings to sample")
	seed := flag.Int64("seed", 7, "testbed seed")
	csvFile := flag.String("csv", "", "also write the series as CSV")
	quick := flag.Bool("quick", false, "shrink run durations")
	workers := flag.Int("workers", 0, "worker-pool bound (0 = all cores, 1 = serial)")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this wall-clock duration (0 = none)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	o := cli.AddObsFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	defer o.Close()
	if err := o.Serve(ctx); err != nil {
		fatal(err)
	}

	stopProf, err := obs.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	spec, ok := products.Find(*productName)
	if !ok {
		fatal(fmt.Errorf("unknown product %q", *productName))
	}

	opts := eval.SweepOptions{Seed: *seed, Points: *points, Workers: *workers, Obs: o.Registry()}
	if *quick {
		opts.TrainFor = 6 * time.Second
		opts.RunFor = 14 * time.Second
		opts.Pps = 200
		opts.Strength = 0.5
	}
	fmt.Printf("sweeping %s %s across %d sensitivity settings...\n\n", spec.Name, spec.Version, *points)
	sw, err := eval.SensitivitySweep(ctx, spec, opts)
	if err != nil {
		if !cli.Interrupted(err) || sw == nil {
			fatal(err)
		}
		if perr := report.ErrorCurves(os.Stdout, sw); perr != nil {
			fatal(perr)
		}
		cli.Banner(os.Stdout, len(sw.Points), *points)
		os.Exit(1)
	}
	if err := report.ErrorCurves(os.Stdout, sw); err != nil {
		fatal(err)
	}
	if reg := o.Registry(); reg != nil {
		sw.Publish(reg)
		if ferr := o.Finish(nil); ferr != nil {
			fatal(ferr)
		}
	}
	if *csvFile != "" {
		err := fsio.WriteAtomic(*csvFile, func(w io.Writer) error {
			return report.SweepCSV(w, sw)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nCSV written to %s\n", *csvFile)
	}
	if err := stopProf(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eersweep:", err)
	os.Exit(1)
}
