// Command faultsweep runs a declarative fault scenario against a product
// at increasing severity and prints the degradation curve — the measured
// evidence behind the survivability and graceful-degradation scores.
//
// Usage:
//
//	faultsweep -scenario examples/faults/span-degrade.json
//	           [-product NAME] [-points N] [-seed N] [-quick] [-workers N]
//	           [-csv] [-o FILE] [-telemetry] [-telemetry-jsonl F]
//	           [-listen ADDR] [-trace-out F] [-timeout 5m]
//
// Output on stdout is fully deterministic for a given seed, scenario,
// and point count: identical invocations produce byte-identical output
// (the Makefile's faultscenarios target pins the shipped examples to
// golden files). Telemetry export goes to stderr only and never
// perturbs stdout. -o writes the report or CSV to a file atomically
// (temp + rename), so a crash never leaves a torn file. Ctrl-C (or
// -timeout expiry) drains in-flight points at a clean event boundary
// and prints the completed points with an INTERRUPTED banner.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/fsio"
	"repro/internal/products"
	"repro/internal/report"
)

func main() {
	scenarioPath := flag.String("scenario", "", "fault scenario JSON file (required)")
	product := flag.String("product", "TrueSecure", "product to evaluate")
	points := flag.Int("points", 5, "severity steps across [0,1]")
	seed := flag.Int64("seed", 7, "simulation seed")
	quick := flag.Bool("quick", false, "shrink run durations (smoke-test scale)")
	workers := flag.Int("workers", 0, "worker-pool bound (0 = all cores, 1 = serial)")
	csv := flag.Bool("csv", false, "emit the curve as CSV instead of the report")
	outFile := flag.String("o", "", "write the report/CSV to this file (atomic) instead of stdout")
	timeout := flag.Duration("timeout", 0, "abort the sweep after this wall-clock duration (0 = none)")
	kinds := flag.Bool("kinds", false, "list fault kinds and exit")
	o := cli.AddObsFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := cli.Context(*timeout)
	defer stop()
	defer o.Close()
	if err := o.Serve(ctx); err != nil {
		fatal(err)
	}

	if *kinds {
		for _, k := range faults.Kinds() {
			fmt.Println(k)
		}
		return
	}
	if *scenarioPath == "" {
		fatal(fmt.Errorf("-scenario is required (see examples/faults/)"))
	}
	sc, err := faults.Load(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	spec, ok := products.Find(*product)
	if !ok {
		fatal(fmt.Errorf("unknown product %q", *product))
	}

	opts := eval.FaultSweepOptions{
		Seed:    *seed,
		Points:  *points,
		Workers: *workers,
		Obs:     o.Registry(),
	}
	if *quick {
		opts.TrainFor = 8 * time.Second
		opts.AttackFor = 20 * time.Second
		opts.Pps = 300
	}
	sw, err := eval.FaultSweep(ctx, spec, sc, opts)
	if err != nil {
		if !cli.Interrupted(err) || sw == nil {
			fatal(err)
		}
		// Keep only the points that finished before cancellation; their
		// rows carry their own severity labels, so the prefix is honest.
		done := &eval.FaultSweepResult{Product: sw.Product, Scenario: sw.Scenario}
		for _, p := range sw.Points {
			if p != nil {
				done.Points = append(done.Points, p)
			}
		}
		if perr := emit(done, *csv, ""); perr != nil {
			fatal(perr)
		}
		cli.Banner(os.Stdout, len(done.Points), *points)
		os.Exit(1)
	}

	if err := emit(sw, *csv, *outFile); err != nil {
		fatal(err)
	}

	if reg := o.Registry(); reg != nil {
		sw.Publish(reg)
		if err := o.Finish(nil); err != nil {
			fatal(err)
		}
	}
}

// emit renders the curve as CSV or the human report, to stdout or — when
// path is non-empty — atomically to a file.
func emit(sw *eval.FaultSweepResult, csv bool, path string) error {
	render := report.FaultSweepReport
	if csv {
		render = report.FaultSweepCSV
	}
	if path == "" {
		return render(os.Stdout, sw)
	}
	return fsio.WriteAtomic(path, func(w io.Writer) error {
		return render(w, sw)
	})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultsweep:", err)
	os.Exit(1)
}
