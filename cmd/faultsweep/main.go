// Command faultsweep runs a declarative fault scenario against a product
// at increasing severity and prints the degradation curve — the measured
// evidence behind the survivability and graceful-degradation scores.
//
// Usage:
//
//	faultsweep -scenario examples/faults/span-degrade.json
//	           [-product NAME] [-points N] [-seed N] [-quick] [-workers N]
//	           [-csv] [-telemetry]
//
// Output on stdout is fully deterministic for a given seed, scenario,
// and point count: identical invocations produce byte-identical output
// (the Makefile's faultscenarios target pins the shipped examples to
// golden files). Telemetry export goes to stderr only and never
// perturbs stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/products"
	"repro/internal/report"
)

func main() {
	scenarioPath := flag.String("scenario", "", "fault scenario JSON file (required)")
	product := flag.String("product", "TrueSecure", "product to evaluate")
	points := flag.Int("points", 5, "severity steps across [0,1]")
	seed := flag.Int64("seed", 7, "simulation seed")
	quick := flag.Bool("quick", false, "shrink run durations (smoke-test scale)")
	workers := flag.Int("workers", 0, "worker-pool bound (0 = all cores, 1 = serial)")
	csv := flag.Bool("csv", false, "emit the curve as CSV instead of the report")
	telemetry := flag.Bool("telemetry", false, "dump survivability telemetry (Prometheus text) to stderr")
	kinds := flag.Bool("kinds", false, "list fault kinds and exit")
	flag.Parse()

	if *kinds {
		for _, k := range faults.Kinds() {
			fmt.Println(k)
		}
		return
	}
	if *scenarioPath == "" {
		fatal(fmt.Errorf("-scenario is required (see examples/faults/)"))
	}
	sc, err := faults.Load(*scenarioPath)
	if err != nil {
		fatal(err)
	}
	spec, ok := products.Find(*product)
	if !ok {
		fatal(fmt.Errorf("unknown product %q", *product))
	}

	opts := eval.FaultSweepOptions{
		Seed:    *seed,
		Points:  *points,
		Workers: *workers,
	}
	if *quick {
		opts.TrainFor = 8 * time.Second
		opts.AttackFor = 20 * time.Second
		opts.Pps = 300
	}
	sw, err := eval.FaultSweep(spec, sc, opts)
	if err != nil {
		fatal(err)
	}

	if *csv {
		err = report.FaultSweepCSV(os.Stdout, sw)
	} else {
		err = report.FaultSweepReport(os.Stdout, sw)
	}
	if err != nil {
		fatal(err)
	}

	if *telemetry {
		reg := obs.NewRegistry()
		sw.Publish(reg)
		if err := reg.Snapshot().WritePrometheus(os.Stderr); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "faultsweep:", err)
	os.Exit(1)
}
